package cluster

import (
	"fmt"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/trace"
)

// Server owns one graph partition and answers batched requests. A Server is
// safe for concurrent use: the underlying graph is immutable and stats use
// internal locking.
type Server struct {
	g         *graph.Graph
	part      Partitioner
	partition int
	stats     *trace.AccessStats
}

// NewServer creates a server for the given partition. All servers share the
// full immutable graph object in-process but only answer for nodes they
// own, mirroring a real deployment where each holds its shard; requests for
// foreign nodes are rejected, which catches routing bugs in the client.
func NewServer(g *graph.Graph, part Partitioner, partition int) *Server {
	if partition < 0 || partition >= part.Servers() {
		panic(fmt.Sprintf("cluster: partition %d out of %d", partition, part.Servers()))
	}
	return &Server{g: g, part: part, partition: partition, stats: &trace.AccessStats{}}
}

// Partition returns this server's partition index.
func (s *Server) Partition() int { return s.partition }

// Stats exposes the server-side access statistics.
func (s *Server) Stats() *trace.AccessStats { return s.stats }

// Meta answers an OpMeta request.
func (s *Server) Meta() MetaResponse {
	return MetaResponse{
		NumNodes:   s.g.NumNodes(),
		AttrLen:    s.g.AttrLen(),
		Partition:  s.partition,
		Partitions: s.part.Servers(),
	}
}

// GetNeighbors answers a batched neighbor request.
func (s *Server) GetNeighbors(req NeighborsRequest) (NeighborsResponse, error) {
	resp := NeighborsResponse{Lists: make([][]graph.NodeID, len(req.IDs))}
	for i, v := range req.IDs {
		if s.part.Owner(v) != s.partition {
			return NeighborsResponse{}, fmt.Errorf("cluster: node %d routed to server %d but owned by %d", v, s.partition, s.part.Owner(v))
		}
		nbrs := s.g.Neighbors(v)
		if req.MaxPerNode > 0 && len(nbrs) > int(req.MaxPerNode) {
			nbrs = nbrs[:req.MaxPerNode]
		}
		// Fine-grained structure access: offset lookup + ID list.
		s.stats.Record(trace.AccessStructure, 16+len(nbrs)*8, false)
		resp.Lists[i] = nbrs
	}
	return resp, nil
}

// GetAttrs answers a batched attribute request.
func (s *Server) GetAttrs(req AttrsRequest) (AttrsResponse, error) {
	resp := AttrsResponse{AttrLen: s.g.AttrLen()}
	for _, v := range req.IDs {
		if s.part.Owner(v) != s.partition {
			return AttrsResponse{}, fmt.Errorf("cluster: node %d routed to server %d but owned by %d", v, s.partition, s.part.Owner(v))
		}
		resp.Attrs = s.g.Attr(resp.Attrs, v)
		s.stats.Record(trace.AccessAttribute, s.g.AttrBytes(), false)
	}
	return resp, nil
}

// Handle dispatches a raw protocol message and returns the raw response,
// the path the TCP transport uses.
func (s *Server) Handle(msg []byte) ([]byte, error) {
	if len(msg) == 0 {
		return nil, fmt.Errorf("cluster: empty message")
	}
	switch msg[0] {
	case OpGetNeighbors:
		req, err := DecodeNeighborsRequest(msg)
		if err != nil {
			return nil, err
		}
		resp, err := s.GetNeighbors(req)
		if err != nil {
			return nil, err
		}
		return EncodeNeighborsResponse(resp), nil
	case OpGetAttrs:
		req, err := DecodeAttrsRequest(msg)
		if err != nil {
			return nil, err
		}
		resp, err := s.GetAttrs(req)
		if err != nil {
			return nil, err
		}
		return EncodeAttrsResponse(resp), nil
	case OpMeta:
		return EncodeMetaResponse(s.Meta()), nil
	default:
		return nil, fmt.Errorf("cluster: unknown op %#x", msg[0])
	}
}
