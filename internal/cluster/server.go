package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/stats"
	"lsdgnn/internal/trace"
)

// Backend is the graph view a shard server answers from. *graph.Graph is
// the in-memory backend; *store.DiskStore satisfies the same shape, so a
// server can serve a partition straight off a persistent segment+WAL
// store without the cluster layer knowing. Implementations must be safe
// for concurrent readers.
type Backend interface {
	NumNodes() int64
	AttrLen() int
	// AttrBytes returns the wire size of one attribute vector.
	AttrBytes() int
	// Neighbors returns v's adjacency; the returned slice must stay valid
	// until the next call from the same goroutine.
	Neighbors(v graph.NodeID) []graph.NodeID
	// Attr appends v's attribute vector to dst.
	Attr(dst []float32, v graph.NodeID) []float32
}

// Server owns one graph partition and answers batched requests. A Server is
// safe for concurrent use: the backend serves concurrent readers and stats
// use internal locking. Request handlers take a context so large batches
// abort promptly when the caller cancels or its deadline expires.
type Server struct {
	g         Backend
	part      Partitioner
	partition int
	stats     *trace.AccessStats
	// lat records per-request Handle latency ("cluster.server") — the
	// server-side half of the per-hop breakdown, also reported to traced
	// clients in the reply envelope.
	lat *stats.Latency
	// wire counts request/response bytes crossing Handle plus the packed
	// share and BDI compression ratio ("cluster.wire").
	wire *WireStats
	// log, when set, emits trace-annotated request logs.
	log atomic.Pointer[slog.Logger]
	// tracer, when set, records a HopServer span per handled request so
	// /trace/{id} on the server's admin plane can show its side of a trace.
	tracer atomic.Pointer[obs.Tracer]
}

// SetTracer attaches a tracer recording server-side Handle spans (nil
// detaches). Safe to call while serving.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer.Store(t) }

// ctxCheckStride is how many request items a handler processes between
// context checks — frequent enough to bound overrun, cheap enough to
// disappear in the per-item cost.
const ctxCheckStride = 256

// NewServer creates a server for the given partition. All servers share the
// full immutable graph object in-process but only answer for nodes they
// own, mirroring a real deployment where each holds its shard; requests for
// foreign nodes are rejected, which catches routing bugs in the client.
func NewServer(g *graph.Graph, part Partitioner, partition int) *Server {
	return NewBackendServer(g, part, partition)
}

// NewBackendServer creates a server answering from an arbitrary Backend —
// the constructor persistent-store deployments use (lsdgnn-server
// -store-path hands a *store.DiskStore here).
func NewBackendServer(b Backend, part Partitioner, partition int) *Server {
	if partition < 0 || partition >= part.Servers() {
		panic(fmt.Sprintf("cluster: partition %d out of %d", partition, part.Servers()))
	}
	return &Server{
		g: b, part: part, partition: partition,
		stats: &trace.AccessStats{},
		lat:   stats.NewLatency("cluster.server"),
		wire:  &WireStats{},
	}
}

// Partition returns this server's partition index.
func (s *Server) Partition() int { return s.partition }

// Stats exposes the server-side access statistics.
func (s *Server) Stats() *trace.AccessStats { return s.stats }

// Latency exposes the per-request Handle latency recorder
// ("cluster.server" layer).
func (s *Server) Latency() *stats.Latency { return s.lat }

// Wire exposes the wire-traffic statistics ("cluster.wire" layer).
func (s *Server) Wire() *WireStats { return s.wire }

// SetLogger installs a structured logger for request logging: each handled
// request at Debug (with trace ID, op, duration), rejections at Warn. Nil
// disables logging. Safe to call concurrently with serving.
func (s *Server) SetLogger(l *slog.Logger) { s.log.Store(l) }

// Meta answers an OpMeta request.
func (s *Server) Meta() MetaResponse {
	return MetaResponse{
		NumNodes:   s.g.NumNodes(),
		AttrLen:    s.g.AttrLen(),
		Partition:  s.partition,
		Partitions: s.part.Servers(),
		Version:    ProtoVersion,
	}
}

// checkID rejects node IDs outside the graph's ID space or not owned by
// this partition. Malformed or hostile frames can carry arbitrary 64-bit
// IDs; they must come back as errors, never index panics.
func (s *Server) checkID(v graph.NodeID) error {
	// Compare in uint64 space: IDs at or above 2^63 would turn negative as
	// int64 and slip past a signed bounds check.
	if uint64(v) >= uint64(s.g.NumNodes()) {
		return fmt.Errorf("cluster: node %d outside graph of %d nodes", v, s.g.NumNodes())
	}
	if o := s.part.Owner(v); o != s.partition {
		return fmt.Errorf("cluster: node %d routed to server %d but owned by %d", v, s.partition, o)
	}
	return nil
}

// GetNeighbors answers a batched neighbor request.
func (s *Server) GetNeighbors(ctx context.Context, req NeighborsRequest) (NeighborsResponse, error) {
	resp := NeighborsResponse{Lists: make([][]graph.NodeID, len(req.IDs))}
	for i, v := range req.IDs {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return NeighborsResponse{}, err
			}
		}
		if err := s.checkID(v); err != nil {
			return NeighborsResponse{}, err
		}
		nbrs := s.g.Neighbors(v)
		if req.MaxPerNode > 0 && len(nbrs) > int(req.MaxPerNode) {
			nbrs = nbrs[:req.MaxPerNode]
		}
		// Fine-grained structure access: offset lookup + ID list.
		s.stats.Record(trace.AccessStructure, 16+len(nbrs)*8, false)
		resp.Lists[i] = nbrs
	}
	return resp, nil
}

// GetAttrs answers a batched attribute request.
func (s *Server) GetAttrs(ctx context.Context, req AttrsRequest) (AttrsResponse, error) {
	resp := AttrsResponse{AttrLen: s.g.AttrLen()}
	for i, v := range req.IDs {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return AttrsResponse{}, err
			}
		}
		if err := s.checkID(v); err != nil {
			return AttrsResponse{}, err
		}
		resp.Attrs = s.g.Attr(resp.Attrs, v)
		s.stats.Record(trace.AccessAttribute, s.g.AttrBytes(), false)
	}
	return resp, nil
}

// Handle dispatches a raw protocol message and returns the raw response,
// the path the transports use. A malformed frame from a remote peer must
// never take the server down: decoding failures are returned as errors and
// any residual panic in a handler is converted to an error at this
// boundary. Rejections come back typed as *ServerError — the verdict of a
// live server on a bad request, deterministic per request — so the client
// resilience layer neither retries them nor counts them against circuit
// breakers. Context errors pass through untyped: they belong to the
// caller, not the request.
//
// An OpTraced envelope is unwrapped here: its trace ID joins the request
// context (and the request log), the inner message is dispatched normally,
// and the reply is enveloped with the measured handling time so the client
// can split wire from server latency per hop.
func (s *Server) Handle(ctx context.Context, msg []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("cluster: request failed: %v", r)
		}
		if err != nil && ctx.Err() == nil {
			var se *ServerError
			if !errors.As(err, &se) {
				err = &ServerError{Server: s.partition, Msg: err.Error()}
			}
		}
	}()
	if len(msg) == 0 {
		return nil, fmt.Errorf("cluster: empty message")
	}
	defer func(in int) { s.wire.recordFrame(in, len(resp)) }(len(msg))
	var id obs.TraceID
	traced := msg[0] == OpTraced
	if traced {
		id, msg, err = DecodeTracedRequest(msg)
		if err != nil {
			return nil, err
		}
		ctx = obs.WithTrace(ctx, id)
	}
	start := time.Now()
	resp, err = s.dispatch(ctx, msg)
	dur := time.Since(start)
	if err == nil {
		s.lat.ObserveTrace(dur, uint64(id))
	} else if ctx.Err() == nil {
		s.lat.ObserveError()
	}
	if tr := s.tracer.Load(); tr != nil {
		tr.ObserveErr(id, obs.HopServer, "", start, dur, err != nil)
	}
	s.logRequest(id, msg[0], dur, err)
	if err != nil || !traced {
		return resp, err
	}
	return EncodeTracedReply(dur, resp), nil
}

// dispatch routes one unwrapped protocol message to its handler.
func (s *Server) dispatch(ctx context.Context, msg []byte) ([]byte, error) {
	switch msg[0] {
	case OpGetNeighbors:
		req, err := DecodeNeighborsRequest(msg)
		if err != nil {
			return nil, err
		}
		r, err := s.GetNeighbors(ctx, req)
		if err != nil {
			return nil, err
		}
		return EncodeNeighborsResponse(r), nil
	case OpGetAttrs:
		req, err := DecodeAttrsRequest(msg)
		if err != nil {
			return nil, err
		}
		r, err := s.GetAttrs(ctx, req)
		if err != nil {
			return nil, err
		}
		return EncodeAttrsResponse(r), nil
	case OpPacked:
		return s.handlePacked(ctx, msg)
	case OpMeta:
		// A client advertising protocol ≥1 gets the versioned response;
		// legacy clients get the 21-byte form they expect.
		if MetaRequestVersion(msg) >= 1 {
			return EncodeMetaResponseV1(s.Meta()), nil
		}
		return EncodeMetaResponse(s.Meta()), nil
	default:
		return nil, fmt.Errorf("cluster: unknown op %#x", msg[0])
	}
}

// handlePacked serves a protocol-v2 OpPacked frame: every sub-request is
// dispatched against this partition and answered in place, so one shard
// rejecting a node ID fails only its own sub-slot while its siblings still
// return data (the client resilience layer then judges each sub on its own
// status). Only a context error aborts the whole frame — that belongs to
// the caller, not the requests.
func (s *Server) handlePacked(ctx context.Context, msg []byte) ([]byte, error) {
	subs, bdi, err := DecodePackedRequest(msg, &s.wire.Codec)
	if err != nil {
		return nil, err
	}
	s.wire.recordPacked(len(subs))
	resps := make([]PackedSubResponse, len(subs))
	for i, sub := range subs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out := &resps[i]
		out.Op = sub.Op
		switch sub.Op {
		case OpGetNeighbors:
			out.Neighbors, out.Err = s.GetNeighbors(ctx, sub.Neighbors)
		case OpGetAttrs:
			out.Attrs, out.Err = s.GetAttrs(ctx, sub.Attrs)
		}
		if out.Err != nil {
			if ctx.Err() != nil {
				return nil, out.Err
			}
			var se *ServerError
			if !errors.As(out.Err, &se) {
				out.Err = &ServerError{Server: s.partition, Msg: out.Err.Error()}
			}
		}
	}
	return EncodePackedResponse(resps, bdi, &s.wire.Codec), nil
}

// logRequest emits one structured request log line when a logger is set.
func (s *Server) logRequest(id obs.TraceID, op byte, dur time.Duration, err error) {
	l := s.log.Load()
	if l == nil {
		return
	}
	attrs := []any{
		slog.Int("partition", s.partition),
		slog.String("op", fmt.Sprintf("%#x", op)),
		slog.Uint64("trace", uint64(id)),
		slog.Duration("dur", dur),
	}
	if err != nil {
		l.Warn("request rejected", append(attrs, slog.String("err", err.Error()))...)
		return
	}
	l.Debug("request served", attrs...)
}
