package cluster

import (
	"testing"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/sampler"
)

func TestExtractShard(t *testing.T) {
	g := testGraph(t)
	part := HashPartitioner{N: 3}
	var totalEdges int64
	for p := 0; p < 3; p++ {
		shard, err := ExtractShard(g, part, p)
		if err != nil {
			t.Fatal(err)
		}
		if shard.NumNodes() != g.NumNodes() {
			t.Fatal("shard must keep the global ID space")
		}
		totalEdges += shard.NumEdges()
		for v := int64(0); v < g.NumNodes(); v++ {
			id := graph.NodeID(v)
			if part.Owner(id) == p {
				want := g.Neighbors(id)
				got := shard.Neighbors(id)
				if len(got) != len(want) {
					t.Fatalf("shard %d node %d: %d neighbors, want %d", p, v, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shard %d node %d neighbor mismatch", p, v)
					}
				}
				// Procedural attrs carry over identically.
				wa, ga := g.Attr(nil, id), shard.Attr(nil, id)
				for i := range wa {
					if wa[i] != ga[i] {
						t.Fatalf("shard %d node %d attr mismatch", p, v)
					}
				}
			} else if shard.Degree(id) != 0 {
				t.Fatalf("shard %d stores foreign node %d", p, v)
			}
		}
	}
	if totalEdges != g.NumEdges() {
		t.Fatalf("shards cover %d edges, graph has %d", totalEdges, g.NumEdges())
	}
}

func TestExtractShardMaterialized(t *testing.T) {
	g := graph.Generate(graph.GenConfig{NumNodes: 300, AvgDegree: 4, AttrLen: 3, Seed: 4, Materialize: true})
	part := HashPartitioner{N: 2}
	shard, err := ExtractShard(g, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if part.Owner(id) != 0 {
			continue
		}
		wa, ga := g.Attr(nil, id), shard.Attr(nil, id)
		for i := range wa {
			if wa[i] != ga[i] {
				t.Fatalf("materialized attrs lost for node %d", v)
			}
		}
	}
}

func TestShardServerEquivalence(t *testing.T) {
	// A cluster of shard-backed servers must answer exactly like one of
	// full-graph servers.
	g := testGraph(t)
	part := HashPartitioner{N: 4}
	full := make([]*Server, 4)
	shardSrv := make([]*Server, 4)
	for p := 0; p < 4; p++ {
		full[p] = NewServer(g, part, p)
		s, err := ShardServer(g, part, p)
		if err != nil {
			t.Fatal(err)
		}
		shardSrv[p] = s
	}
	cf, err := NewClient(DirectTransport{Servers: full}, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewClient(DirectTransport{Servers: shardSrv}, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := []graph.NodeID{0, 5, 100, 555, 1400}
	lf, err := cf.GetNeighbors(bg, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := cs.GetNeighbors(bg, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if len(lf[i]) != len(ls[i]) {
			t.Fatalf("node %d: shard cluster differs", ids[i])
		}
		for j := range lf[i] {
			if lf[i][j] != ls[i][j] {
				t.Fatalf("node %d neighbor %d differs", ids[i], j)
			}
		}
	}
	af, err := cf.GetAttrs(bg, ids)
	if err != nil {
		t.Fatal(err)
	}
	as, err := cs.GetAttrs(bg, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range af {
		if af[i] != as[i] {
			t.Fatal("shard cluster attrs differ")
		}
	}
	// And sampling over the shard cluster works end to end.
	cfg := sampler.Config{Fanouts: []int{3, 3}, Method: sampler.Streaming, FetchAttrs: true, Seed: 1}
	if _, err := cs.SampleBatch(bg, ids, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShardMemorySavings(t *testing.T) {
	g := testGraph(t)
	part := HashPartitioner{N: 4}
	shard, err := ExtractShard(g, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A shard's edge storage is ≈1/4 of the full graph's.
	frac := float64(shard.NumEdges()) / float64(g.NumEdges())
	if frac > 0.40 || frac < 0.10 {
		t.Fatalf("shard holds %.0f%% of edges, want ~25%%", frac*100)
	}
}

func TestExtractShardValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := ExtractShard(g, HashPartitioner{N: 0}, 0); err == nil {
		t.Fatal("invalid partitioner accepted")
	}
}
