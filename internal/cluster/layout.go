package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/stats"
)

// Elastic partition layout. The paper's decoupled FaaS variants (§6,
// Fig 13) pool fabric-attached memory independently of compute, which only
// pays off if the serving layer can re-home partitions and rotate replicas
// *while traffic is flowing*. This file makes the layout a first-class,
// versioned object: an immutable, epoch-numbered Layout that the client
// swaps atomically, plus the control-plane primitives built on it —
// replica add (admitted only after a health/parity probe), replica drain
// (stops routing, lets in-flight frames finish, then removes), and
// partition migration (a brief dual-home window moving serving
// responsibility between endpoints). In-flight requests complete against
// the epoch they started under; retry passes and hedges re-resolve their
// endpoint set from the live layout, so they land on the new epoch.

// EndpointState is an endpoint's position in a partition's replica set.
type EndpointState uint8

// Endpoint states: serving endpoints take traffic; a joining endpoint is
// warming (probed but not yet routed to); a draining endpoint takes no new
// requests while its in-flight work completes.
const (
	EndpointServing EndpointState = iota
	EndpointJoining
	EndpointDraining
)

func (s EndpointState) String() string {
	switch s {
	case EndpointServing:
		return "serving"
	case EndpointJoining:
		return "joining"
	case EndpointDraining:
		return "draining"
	default:
		return fmt.Sprintf("EndpointState(%d)", int(s))
	}
}

// LayoutEndpoint is one endpoint's membership in a partition's replica set.
type LayoutEndpoint struct {
	// ID is the transport endpoint index.
	ID int
	// State gates routing: only serving endpoints receive new requests.
	State EndpointState
}

// Layout is the versioned partition→endpoints routing table. Each partition
// lists the endpoints holding its shard (entry 0 of the serving subset is
// the preferred primary) together with their lifecycle state. Layouts are
// immutable: the With* methods return a copy with the epoch advanced, and
// Client.ApplyLayout swaps the active layout atomically — the partition
// *count* never changes across epochs (packer queues and partitioners key
// on it), only the endpoint sets do.
//
// Build one with NewLayout or UniformLayout; derive successors with the
// mutators. A zero Layout is not valid.
type Layout struct {
	// Epoch numbers the layout generation, starting at 1. ApplyLayout
	// refuses a layout whose epoch does not advance the one being served.
	Epoch uint64
	// Partitions lists, per partition, the endpoints holding that shard.
	Partitions [][]LayoutEndpoint

	// routable caches, per partition, the serving endpoints in listed
	// order — what the resilience layer iterates. Never mutated after
	// finalize, so readers share it without copying.
	routable [][]int
	// dual marks partitions inside a migration's dual-home window.
	dual []bool
	// members maps endpoint → partition for every listed endpoint.
	members map[int]int
}

// NewLayout builds the epoch-1 layout in which every endpoint of m serves.
// A nil ReplicaMap yields the identity layout: partition p served only by
// endpoint p.
func NewLayout(partitions int, m ReplicaMap) (*Layout, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("cluster: layout over %d partitions", partitions)
	}
	if err := m.Validate(partitions); err != nil {
		return nil, err
	}
	l := &Layout{Epoch: 1, Partitions: make([][]LayoutEndpoint, partitions)}
	for p := range l.Partitions {
		eps := []int{p}
		if m != nil {
			eps = m[p]
		}
		row := make([]LayoutEndpoint, len(eps))
		for i, ep := range eps {
			row[i] = LayoutEndpoint{ID: ep, State: EndpointServing}
		}
		l.Partitions[p] = row
	}
	if err := l.finalize(); err != nil {
		return nil, err
	}
	return l, nil
}

// UniformLayout is NewLayout over UniformReplicas: the canonical replicated
// layout (replica r of partition p at endpoint r*partitions+p) as a
// versioned epoch-1 Layout. Panics on partitions < 1, like UniformReplicas.
func UniformLayout(partitions, replicas int) *Layout {
	l, err := NewLayout(partitions, UniformReplicas(partitions, replicas))
	if err != nil {
		panic(err)
	}
	return l
}

// NumPartitions returns the partition count (stable across epochs).
func (l *Layout) NumPartitions() int { return len(l.Partitions) }

// Routable returns the partition's serving endpoints, preferred primary
// first. The slice is shared and must not be modified.
func (l *Layout) Routable(partition int) []int {
	if partition < 0 || partition >= len(l.routable) {
		return nil
	}
	return l.routable[partition]
}

// Contains reports whether the endpoint appears anywhere in the layout,
// in any state.
func (l *Layout) Contains(endpoint int) bool {
	_, ok := l.members[endpoint]
	return ok
}

// PartitionOf returns the partition an endpoint is listed under.
func (l *Layout) PartitionOf(endpoint int) (int, bool) {
	p, ok := l.members[endpoint]
	return p, ok
}

// State returns the endpoint's lifecycle state within the partition.
func (l *Layout) State(partition, endpoint int) (EndpointState, bool) {
	if partition < 0 || partition >= len(l.Partitions) {
		return 0, false
	}
	for _, e := range l.Partitions[partition] {
		if e.ID == endpoint {
			return e.State, true
		}
	}
	return 0, false
}

// DualHome reports whether the partition is inside a migration's dual-home
// window (two endpoints hold the shard while responsibility moves).
func (l *Layout) DualHome(partition int) bool {
	return partition >= 0 && partition < len(l.dual) && l.dual[partition]
}

// Endpoints returns a copy of the endpoint→partition membership map.
// Derived from Partitions rather than the routing cache so it also works on
// caller-constructed layouts that have not been normalized yet (e.g. the
// one handed to core.NewSystem before the client finalizes it).
func (l *Layout) Endpoints() map[int]int {
	out := make(map[int]int, len(l.Partitions)*2)
	for p, row := range l.Partitions {
		for _, e := range row {
			out[e.ID] = p
		}
	}
	return out
}

// Validate checks the layout is well-formed over the given partition
// count: every partition keeps at least one serving endpoint, no endpoint
// is listed twice or under two partitions, no negative endpoint indices.
func (l *Layout) Validate(partitions int) error {
	if len(l.Partitions) != partitions {
		return fmt.Errorf("cluster: layout covers %d of %d partitions", len(l.Partitions), partitions)
	}
	return l.check()
}

func (l *Layout) check() error {
	owners := make(map[int]int, len(l.Partitions)*2)
	for p, row := range l.Partitions {
		serving := 0
		for _, e := range row {
			if e.ID < 0 {
				return fmt.Errorf("cluster: partition %d lists negative endpoint %d", p, e.ID)
			}
			if prev, ok := owners[e.ID]; ok {
				if prev == p {
					return fmt.Errorf("cluster: partition %d lists endpoint %d twice", p, e.ID)
				}
				return fmt.Errorf("cluster: endpoint %d listed for partitions %d and %d — one endpoint holds one shard", e.ID, prev, p)
			}
			owners[e.ID] = p
			if e.State == EndpointServing {
				serving++
			}
		}
		if serving == 0 {
			return fmt.Errorf("cluster: partition %d has no serving endpoint", p)
		}
	}
	return nil
}

// finalize validates and builds the derived routing caches.
func (l *Layout) finalize() error {
	if err := l.check(); err != nil {
		return err
	}
	l.routable = make([][]int, len(l.Partitions))
	l.members = make(map[int]int, len(l.Partitions)*2)
	for p, row := range l.Partitions {
		eps := make([]int, 0, len(row))
		for _, e := range row {
			l.members[e.ID] = p
			if e.State == EndpointServing {
				eps = append(eps, e.ID)
			}
		}
		l.routable[p] = eps
	}
	if l.dual == nil {
		l.dual = make([]bool, len(l.Partitions))
	}
	return nil
}

// clone deep-copies the mutable parts and advances the epoch; the caller
// mutates the copy and finalizes.
func (l *Layout) clone() *Layout {
	n := &Layout{Epoch: l.Epoch + 1, Partitions: make([][]LayoutEndpoint, len(l.Partitions))}
	for p, row := range l.Partitions {
		n.Partitions[p] = append([]LayoutEndpoint(nil), row...)
	}
	if l.dual != nil {
		n.dual = append([]bool(nil), l.dual...)
	}
	return n
}

// normalized returns a finalized deep copy at the same epoch, so applying
// a caller-constructed layout never shares mutable state with it.
func (l *Layout) normalized() (*Layout, error) {
	n := l.clone()
	n.Epoch = l.Epoch
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

func (l *Layout) checkPartition(partition int) error {
	if partition < 0 || partition >= len(l.Partitions) {
		return fmt.Errorf("cluster: no partition %d in layout", partition)
	}
	return nil
}

// WithJoining returns the next epoch with endpoint added to the partition
// in the joining state: listed (and probe-able) but not yet routed to.
func (l *Layout) WithJoining(partition, endpoint int) (*Layout, error) {
	if err := l.checkPartition(partition); err != nil {
		return nil, err
	}
	if p, ok := l.members[endpoint]; ok {
		return nil, fmt.Errorf("cluster: endpoint %d already in the layout (partition %d)", endpoint, p)
	}
	n := l.clone()
	n.Partitions[partition] = append(n.Partitions[partition], LayoutEndpoint{ID: endpoint, State: EndpointJoining})
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// WithServing returns the next epoch with the endpoint serving the
// partition: a listed endpoint (joining or draining) is promoted in place,
// an unlisted one is appended directly — the unprobed path, for callers
// that have verified the endpoint themselves.
func (l *Layout) WithServing(partition, endpoint int) (*Layout, error) {
	if err := l.checkPartition(partition); err != nil {
		return nil, err
	}
	if p, ok := l.members[endpoint]; ok && p != partition {
		return nil, fmt.Errorf("cluster: endpoint %d already holds partition %d", endpoint, p)
	}
	n := l.clone()
	promoted := false
	for i := range n.Partitions[partition] {
		if n.Partitions[partition][i].ID == endpoint {
			n.Partitions[partition][i].State = EndpointServing
			promoted = true
			break
		}
	}
	if !promoted {
		n.Partitions[partition] = append(n.Partitions[partition], LayoutEndpoint{ID: endpoint, State: EndpointServing})
	}
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// WithDraining returns the next epoch with the endpoint marked draining:
// removed from the routable set so no new requests land on it, while
// in-flight work completes. Refused for the partition's last serving
// endpoint — that would blackhole the shard.
func (l *Layout) WithDraining(partition, endpoint int) (*Layout, error) {
	if err := l.checkPartition(partition); err != nil {
		return nil, err
	}
	st, ok := l.State(partition, endpoint)
	if !ok {
		return nil, fmt.Errorf("cluster: endpoint %d not in partition %d", endpoint, partition)
	}
	if st == EndpointServing && len(l.routable[partition]) == 1 {
		return nil, fmt.Errorf("cluster: endpoint %d is partition %d's last serving endpoint", endpoint, partition)
	}
	n := l.clone()
	for i := range n.Partitions[partition] {
		if n.Partitions[partition][i].ID == endpoint {
			n.Partitions[partition][i].State = EndpointDraining
		}
	}
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// Without returns the next epoch with the endpoint removed from the
// partition entirely. Refused for the last serving endpoint.
func (l *Layout) Without(partition, endpoint int) (*Layout, error) {
	if err := l.checkPartition(partition); err != nil {
		return nil, err
	}
	st, ok := l.State(partition, endpoint)
	if !ok {
		return nil, fmt.Errorf("cluster: endpoint %d not in partition %d", endpoint, partition)
	}
	if st == EndpointServing && len(l.routable[partition]) == 1 {
		return nil, fmt.Errorf("cluster: endpoint %d is partition %d's last serving endpoint", endpoint, partition)
	}
	n := l.clone()
	row := n.Partitions[partition][:0]
	for _, e := range n.Partitions[partition] {
		if e.ID != endpoint {
			row = append(row, e)
		}
	}
	n.Partitions[partition] = row
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// WithDualHome returns the next epoch with the partition's dual-home
// window opened (true) or closed (false).
func (l *Layout) WithDualHome(partition int, on bool) (*Layout, error) {
	if err := l.checkPartition(partition); err != nil {
		return nil, err
	}
	n := l.clone()
	n.dual[partition] = on
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// LayoutSnapshot is a point-in-time copy of the elastic-layout counters.
type LayoutSnapshot struct {
	Swaps            int64 // layouts atomically applied (epoch advances)
	ReplicaJoins     int64 // replicas admitted after a successful probe
	ReplicaDrains    int64 // replicas drained out of the layout
	Migrations       int64 // partitions re-homed between endpoints
	DualHomeRequests int64 // requests issued inside a dual-home window
	ProbeFailures    int64 // admission probes that failed
}

// LayoutStats tallies the elastic-layout control plane. Safe for
// concurrent use; the zero value is usable and reports epoch 0, so
// lsdgnn-server can pre-register the schema before any client exists.
type LayoutStats struct {
	mu   sync.Mutex
	snap LayoutSnapshot
	// epoch, when bound to a client's live layout, feeds the epoch gauge.
	epoch func() uint64
}

func (s *LayoutStats) add(field *int64) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (s *LayoutStats) Snapshot() LayoutSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Epoch returns the live layout epoch (0 when no layout is bound).
func (s *LayoutStats) Epoch() uint64 {
	s.mu.Lock()
	f := s.epoch
	s.mu.Unlock()
	if f == nil {
		return 0
	}
	return f()
}

// StatsSnapshot implements stats.Source under the "cluster.layout" layer.
func (s *LayoutStats) StatsSnapshot() stats.Snapshot {
	s.mu.Lock()
	snap := s.snap
	f := s.epoch
	s.mu.Unlock()
	var epoch uint64
	if f != nil {
		epoch = f()
	}
	return stats.Snapshot{Layer: "cluster.layout", Metrics: []stats.Metric{
		{Name: "epoch", Value: float64(epoch)},
		{Name: "swaps", Value: float64(snap.Swaps)},
		{Name: "replica_joins", Value: float64(snap.ReplicaJoins)},
		{Name: "replica_drains", Value: float64(snap.ReplicaDrains)},
		{Name: "migrations", Value: float64(snap.Migrations)},
		{Name: "dual_home_requests", Value: float64(snap.DualHomeRequests), Unit: "req"},
		{Name: "probe_failures", Value: float64(snap.ProbeFailures)},
	}}
}

// WithLayout sets the client's initial elastic layout, replacing the
// static ReplicaMap as the routing source. Requires WithResilience — the
// layout machinery routes through the failover/breaker path. The replica
// map inside the resilience config, if any, is ignored in favor of the
// layout.
func WithLayout(l *Layout) ClientOption {
	return func(c *Client) { c.initLayout = l }
}

// Layout returns the layout the client is currently routing by.
func (c *Client) Layout() *Layout { return c.layout.Load() }

// routableEndpoints resolves a partition's serving endpoints from the live
// layout; the resilience layer calls it at the top of every endpoint pass,
// so retries and hedges of an in-flight request resolve against the newest
// epoch while the pass that already started completes against the old one.
func (c *Client) routableEndpoints(partition int) []int {
	l := c.layout.Load()
	if l == nil {
		return nil
	}
	return l.Routable(partition)
}

// ApplyLayout atomically swaps the serving layout for nl. The new epoch
// must advance the current one; the layout is validated, deep-copied, and
// published in one atomic store. In-flight requests complete against the
// epoch they started under. On every swap, breakers belonging to departed
// endpoints are dropped — an epoch bump can never wedge a breaker open (or
// leak its half-open probe slot) against an endpoint that left — and hot
// cache entries of partitions whose serving set changed are invalidated so
// a re-homed shard can never serve stale data from before the move.
func (c *Client) ApplyLayout(nl *Layout) error {
	c.layoutMu.Lock()
	defer c.layoutMu.Unlock()
	return c.applyLocked(nl)
}

func (c *Client) applyLocked(nl *Layout) error {
	if c.res == nil {
		return errors.New("cluster: layout swaps require WithResilience")
	}
	if nl == nil {
		return errors.New("cluster: nil layout")
	}
	norm, err := nl.normalized()
	if err != nil {
		return err
	}
	if err := norm.Validate(c.part.Servers()); err != nil {
		return err
	}
	old := c.layout.Load()
	if old != nil && norm.Epoch <= old.Epoch {
		return fmt.Errorf("cluster: stale layout epoch %d (serving epoch %d)", norm.Epoch, old.Epoch)
	}
	c.layout.Store(norm)
	c.res.pruneBreakers(func(ep int) bool { return norm.Contains(ep) })
	if c.cache != nil && old != nil {
		if changed := changedPartitions(old, norm); len(changed) > 0 {
			c.cache.Invalidate(func(id graph.NodeID) bool { return changed[c.part.Owner(id)] })
		}
	}
	c.Lay.add(&c.Lay.snap.Swaps)
	return nil
}

// changedPartitions returns the partitions whose serving endpoint set
// differs between the two layouts.
func changedPartitions(old, nl *Layout) map[int]bool {
	changed := make(map[int]bool)
	for p := range nl.routable {
		a, b := old.Routable(p), nl.routable[p]
		if len(a) != len(b) {
			changed[p] = true
			continue
		}
		set := make(map[int]bool, len(a))
		for _, ep := range a {
			set[ep] = true
		}
		for _, ep := range b {
			if !set[ep] {
				changed[p] = true
				break
			}
		}
	}
	return changed
}

// AddReplica admits a new endpoint to a partition's replica set: the
// endpoint is published as joining (visible, not routed to), must pass the
// health/parity probe against the serving replicas, and only then is
// promoted to serving. A failed probe rolls the endpoint back out of the
// layout and counts a probe failure.
func (c *Client) AddReplica(ctx context.Context, partition, endpoint int) error {
	c.layoutMu.Lock()
	defer c.layoutMu.Unlock()
	if c.res == nil {
		return errors.New("cluster: AddReplica requires WithResilience")
	}
	join, err := c.layout.Load().WithJoining(partition, endpoint)
	if err != nil {
		return err
	}
	if err := c.applyLocked(join); err != nil {
		return err
	}
	if perr := c.probeEndpoint(ctx, partition, endpoint); perr != nil {
		c.Lay.add(&c.Lay.snap.ProbeFailures)
		if back, berr := c.layout.Load().Without(partition, endpoint); berr == nil {
			_ = c.applyLocked(back)
		}
		return fmt.Errorf("cluster: endpoint %d failed the admission probe for partition %d: %w", endpoint, partition, perr)
	}
	serve, err := c.layout.Load().WithServing(partition, endpoint)
	if err != nil {
		return err
	}
	if err := c.applyLocked(serve); err != nil {
		return err
	}
	c.Lay.add(&c.Lay.snap.ReplicaJoins)
	return nil
}

// DrainReplica rotates an endpoint out of a partition's replica set: the
// endpoint is marked draining (new requests stop routing to it at the
// epoch swap), in-flight requests — packed flush frames included — finish
// against it, and it is then removed from the layout. Refused for the
// partition's last serving endpoint. ctx bounds the wait for in-flight
// work.
func (c *Client) DrainReplica(ctx context.Context, partition, endpoint int) error {
	c.layoutMu.Lock()
	defer c.layoutMu.Unlock()
	if c.res == nil {
		return errors.New("cluster: DrainReplica requires WithResilience")
	}
	d, err := c.layout.Load().WithDraining(partition, endpoint)
	if err != nil {
		return err
	}
	if err := c.applyLocked(d); err != nil {
		return err
	}
	if err := c.awaitIdle(ctx, endpoint); err != nil {
		return err
	}
	out, err := c.layout.Load().Without(partition, endpoint)
	if err != nil {
		return err
	}
	if err := c.applyLocked(out); err != nil {
		return err
	}
	c.Lay.add(&c.Lay.snap.ReplicaDrains)
	return nil
}

// MigratePartition moves a partition's serving responsibility from one
// endpoint to another with a brief dual-home window: the target joins and
// is probed, both endpoints serve while the window is open, then the
// source drains and leaves. Pair with HotShard to re-home a skew-heated
// partition without a restart.
func (c *Client) MigratePartition(ctx context.Context, partition, from, to int) error {
	c.layoutMu.Lock()
	defer c.layoutMu.Unlock()
	if c.res == nil {
		return errors.New("cluster: MigratePartition requires WithResilience")
	}
	cur := c.layout.Load()
	if st, ok := cur.State(partition, from); !ok || st != EndpointServing {
		return fmt.Errorf("cluster: endpoint %d is not serving partition %d", from, partition)
	}
	join, err := cur.WithJoining(partition, to)
	if err != nil {
		return err
	}
	if err := c.applyLocked(join); err != nil {
		return err
	}
	if perr := c.probeEndpoint(ctx, partition, to); perr != nil {
		c.Lay.add(&c.Lay.snap.ProbeFailures)
		if back, berr := c.layout.Load().Without(partition, to); berr == nil {
			_ = c.applyLocked(back)
		}
		return fmt.Errorf("cluster: endpoint %d failed the migration probe for partition %d: %w", to, partition, perr)
	}
	// Open the dual-home window: both endpoints serve in one epoch swap.
	serve, err := c.layout.Load().WithServing(partition, to)
	if err != nil {
		return err
	}
	if serve, err = serve.WithDualHome(partition, true); err != nil {
		return err
	}
	if err := c.applyLocked(serve); err != nil {
		return err
	}
	// Drain the old home: new requests route only to the target while the
	// source finishes what it already holds.
	drain, err := c.layout.Load().WithDraining(partition, from)
	if err != nil {
		return err
	}
	if err := c.applyLocked(drain); err != nil {
		return err
	}
	if err := c.awaitIdle(ctx, from); err != nil {
		return err
	}
	out, err := c.layout.Load().Without(partition, from)
	if err != nil {
		return err
	}
	if out, err = out.WithDualHome(partition, false); err != nil {
		return err
	}
	if err := c.applyLocked(out); err != nil {
		return err
	}
	c.Lay.add(&c.Lay.snap.Migrations)
	return nil
}

// HotShard reads the client's cumulative per-partition request counters —
// the software analogue of the skew the cluster.pack/cluster.wire layers
// expose per server — and reports the hottest partition when its share
// exceeds factor × the cross-partition mean (factor > 1). The caller
// typically answers with MigratePartition.
func (c *Client) HotShard(factor float64) (partition int, hot bool) {
	if len(c.loads) == 0 || factor <= 0 {
		return 0, false
	}
	var total, max int64
	for p := range c.loads {
		n := c.loads[p].Load()
		total += n
		if n > max {
			max, partition = n, p
		}
	}
	if total == 0 {
		return 0, false
	}
	mean := float64(total) / float64(len(c.loads))
	if float64(max) > factor*mean {
		return partition, true
	}
	return 0, false
}

// awaitIdle waits until the endpoint has no in-flight requests, polling
// the tracker; ctx bounds the wait.
func (c *Client) awaitIdle(ctx context.Context, endpoint int) error {
	for {
		if c.inflight.count(endpoint) == 0 {
			return nil
		}
		t := time.NewTimer(200 * time.Microsecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
}

// probeEndpoint health-checks a candidate before it may serve: its meta
// handshake must agree with the cluster's shape, and a spot check of
// partition-owned nodes must return adjacency lists identical to what the
// serving replicas answer. Transient faults are absorbed by bounded
// internal retries so chaos does not fail every admission.
func (c *Client) probeEndpoint(ctx context.Context, partition, endpoint int) error {
	ids := ownedSample(c.part, partition, c.meta.NumNodes, 8)
	attempts := DefaultRetryPolicy().MaxAttempts
	backoff := DefaultRetryPolicy().BaseBackoff
	if c.res != nil {
		attempts = c.res.cfg.Retry.MaxAttempts
		backoff = c.res.cfg.Retry.BaseBackoff
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			t.Stop()
			backoff *= 2
		}
		if err := c.probeOnce(ctx, partition, endpoint, ids); err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		return nil
	}
	return lastErr
}

func (c *Client) probeOnce(ctx context.Context, partition, endpoint int, ids []graph.NodeID) error {
	raw, err := c.invoke(ctx, endpoint, EncodeMetaRequest())
	if err != nil {
		return err
	}
	meta, err := DecodeMetaResponse(raw)
	if err != nil {
		return err
	}
	if meta.Partitions != c.meta.Partitions || meta.NumNodes != c.meta.NumNodes || meta.AttrLen != c.meta.AttrLen {
		return fmt.Errorf("cluster: endpoint %d shape mismatch: %d partitions / %d nodes / attr %d, cluster has %d / %d / %d",
			endpoint, meta.Partitions, meta.NumNodes, meta.AttrLen, c.meta.Partitions, c.meta.NumNodes, c.meta.AttrLen)
	}
	if len(ids) == 0 {
		return nil
	}
	raw, err = c.invoke(ctx, endpoint, EncodeNeighborsRequest(NeighborsRequest{IDs: ids}))
	if err != nil {
		return err
	}
	got, err := DecodeNeighborsResponse(raw)
	if err != nil {
		return err
	}
	// The reference answer comes from the partition's serving replicas via
	// the normal resilient path.
	want, err := c.neighborsRPC(ctx, partition, NeighborsRequest{IDs: ids})
	if err != nil {
		return err
	}
	if len(got.Lists) != len(want.Lists) {
		return fmt.Errorf("cluster: endpoint %d parity probe returned %d lists, serving replicas %d", endpoint, len(got.Lists), len(want.Lists))
	}
	for i := range got.Lists {
		if !idListsEqual(got.Lists[i], want.Lists[i]) {
			return fmt.Errorf("cluster: endpoint %d parity mismatch on node %d", endpoint, ids[i])
		}
	}
	return nil
}

func idListsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ownedSample scans the ID space for the first `want` nodes owned by the
// partition — the parity probe's spot-check set.
func ownedSample(part Partitioner, partition int, numNodes int64, want int) []graph.NodeID {
	out := make([]graph.NodeID, 0, want)
	for v := int64(0); v < numNodes && len(out) < want; v++ {
		if part.Owner(graph.NodeID(v)) == partition {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// inflightTracker counts in-flight transport calls per endpoint so drains
// can wait for work already on the wire.
type inflightTracker struct {
	mu     sync.Mutex
	counts map[int]int
}

func (t *inflightTracker) enter(ep int) {
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[int]int)
	}
	t.counts[ep]++
	t.mu.Unlock()
}

func (t *inflightTracker) exit(ep int) {
	t.mu.Lock()
	t.counts[ep]--
	t.mu.Unlock()
}

func (t *inflightTracker) count(ep int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[ep]
}
