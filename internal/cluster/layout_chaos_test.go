package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosRebalanceUnderTraffic is the elastic-layout acceptance test:
// while concurrent workers sample under a 5% injected per-call fault rate,
// a controller drains one replica, admits a spare in its place, and
// migrates the hot partition to a fresh endpoint. Every batch — before,
// during, and after the three epoch transitions — must succeed and be
// byte-identical to a static fault-free run.
func TestChaosRebalanceUnderTraffic(t *testing.T) {
	g := testGraph(t)
	const partitions, batches, batchSize, workers = 2, 8, 16, 4
	want := referenceResults(t, g, partitions, batches, batchSize)

	// Endpoints 0..3 form UniformLayout(2, 2); endpoints 4 (partition 0)
	// and 5 (partition 1) sit on the transport as spares outside the
	// initial layout.
	part := HashPartitioner{N: partitions}
	servers := []*Server{
		NewServer(g, part, 0), NewServer(g, part, 1),
		NewServer(g, part, 0), NewServer(g, part, 1),
		NewServer(g, part, 0), NewServer(g, part, 1),
	}
	ft := NewFaultyTransport(DirectTransport{Servers: servers}, 42)
	client, err := NewClientContext(bg, ft, part, -1,
		WithResilience(ResilienceConfig{
			// 6 passes over two serving replicas absorb a 5% per-call rate;
			// the high breaker threshold keeps chaos noise from opening
			// circuits that layout swaps would then have to clean up anyway.
			Retry:   RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Jitter: 0.5},
			Breaker: BreakerConfig{Threshold: 50, OpenFor: 10 * time.Millisecond},
			Seed:    7,
		}),
		WithLayout(UniformLayout(partitions, 2)))
	if err != nil {
		t.Fatal(err)
	}

	// Heat partition 1 so the detector, not the test, picks the migration
	// source.
	hotIDs := ownedSample(part, 1, g.NumNodes(), 4)
	for i := 0; i < 32; i++ {
		if _, err := client.GetNeighbors(bg, hotIDs, 0); err != nil {
			t.Fatal(err)
		}
	}
	hotPart, hot := client.HotShard(1.2)
	if !hot || hotPart != 1 {
		t.Fatalf("HotShard = %d, %v — partition 1 took all the warmup traffic", hotPart, hot)
	}

	ft.SetFaults(FaultSpec{ErrRate: 0.05})

	// The controller reshapes the layout while workers hammer it: drain
	// replica 2 out of partition 0, admit spare 4 in its place, then
	// migrate the hot partition off endpoint 1 onto spare 5.
	ctrlDone := make(chan struct{})
	ctrlErr := make(chan error, 1)
	go func() {
		defer close(ctrlDone)
		ctx, cancel := context.WithTimeout(bg, 30*time.Second)
		defer cancel()
		if err := client.DrainReplica(ctx, 0, 2); err != nil {
			ctrlErr <- fmt.Errorf("drain replica 2: %w", err)
			return
		}
		// The admission probe runs over the faulty transport; a failed
		// probe rolls back cleanly, so retrying the whole admission is
		// safe.
		var err error
		for a := 0; a < 20; a++ {
			if err = client.AddReplica(ctx, 0, 4); err == nil {
				break
			}
		}
		if err != nil {
			ctrlErr <- fmt.Errorf("add replica 4: %w", err)
			return
		}
		for a := 0; a < 20; a++ {
			if err = client.MigratePartition(ctx, hotPart, 1, 5); err == nil {
				break
			}
		}
		if err != nil {
			ctrlErr <- fmt.Errorf("migrate partition %d: %w", hotPart, err)
		}
	}()

	// Workers cycle through the batch set until every batch has run at
	// least once AND the controller has finished — traffic spans all three
	// layout transitions.
	var idx atomic.Int64
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := idx.Add(1) - 1
				b := int(i) % batches
				res, err := client.SampleBatch(bg, chaosRoots(g, b, batchSize), chaosSampling)
				if err != nil {
					errc <- fmt.Errorf("batch %d failed mid-reshape: %w", b, err)
					return
				}
				if !reflect.DeepEqual(res, want[b]) {
					errc <- fmt.Errorf("batch %d diverged from the static-layout reference", b)
					return
				}
				if int(i) >= batches-1 {
					select {
					case <-ctrlDone:
						return
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	select {
	case err := <-ctrlErr:
		t.Fatal(err)
	default:
	}

	// Final shape: partition 0 on {0, 4}, the hot partition on {3, 5},
	// endpoints 1 and 2 fully departed.
	l := client.Layout()
	if got := l.Routable(0); !reflect.DeepEqual(got, []int{0, 4}) {
		t.Fatalf("Routable(0) = %v, want [0 4]", got)
	}
	if got := l.Routable(1); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Fatalf("Routable(1) = %v, want [3 5]", got)
	}
	if l.Contains(1) || l.Contains(2) {
		t.Fatal("departed endpoints still in the layout")
	}
	if l.DualHome(hotPart) {
		t.Fatal("dual-home window left open after migration")
	}
	// Drain = 2 swaps, add = 2, migrate = 4: epoch 1 → at least 9 (failed
	// probe attempts add rollback swaps on top).
	if l.Epoch < 9 {
		t.Fatalf("epoch = %d, want >= 9", l.Epoch)
	}
	snap := client.Lay.Snapshot()
	if snap.Swaps < 8 || snap.ReplicaJoins != 1 || snap.ReplicaDrains != 1 || snap.Migrations != 1 {
		t.Fatalf("layout stats = %+v", snap)
	}

	// Breakers for departed endpoints must not survive the epoch bumps —
	// a wedged breaker against endpoint 1 or 2 would leak its half-open
	// probe slot forever.
	client.res.mu.Lock()
	_, b1 := client.res.breakers[1]
	_, b2 := client.res.breakers[2]
	client.res.mu.Unlock()
	if b1 || b2 {
		t.Fatal("departed endpoints' breakers survived the layout swaps")
	}

	if _, injected := ft.Counts(); injected == 0 {
		t.Fatal("chaos injected no faults — the test proved nothing")
	}
}
