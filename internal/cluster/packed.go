package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/mem"
	"lsdgnn/internal/mof"
	"lsdgnn/internal/stats"
)

// Protocol v2: MoF on the wire. An OpPacked frame carries many logical
// GetNeighbors/GetAttrs requests to the same shard in one round trip
// (§4.3 Tech-1 multi-request packing), and its node-ID / degree vectors
// plus attribute payloads travel through the mof.VecCodec section format,
// BDI-compressed when that is smaller (Tech-2). Version-gated exactly like
// OpTraced: a client only sends OpPacked to a peer that advertised
// ProtoVersion ≥ 2 in the meta handshake, so v0/v1 peers never see the op.
//
// Frame layouts (little-endian):
//
//	request:   OpPacked | flags u8 | count u16 | count × (len u32 | sub)
//	response:  OpPacked | flags u8 | count u16 | count × (len u32 | status u8 | body)
//
// Sub-request bodies reuse the v1 op codes but swap bare ID lists for
// codec sections:
//
//	neighbors: OpGetNeighbors | maxPerNode u32 | idSection
//	attrs:     OpGetAttrs | idSection
//
// Sub-response bodies (status statusOK):
//
//	neighbors: OpGetNeighbors | degreeSection(u32) | flatIDSection(u64)
//	attrs:     OpGetAttrs | attrLen u32 | byteSection(float32 LE)
//
// A non-OK status carries the error text; statusReject marks a *ServerError
// (deterministic rejection — not retryable, not a breaker strike), the same
// split the TCP status byte draws for whole frames.

// OpPacked is the protocol-v2 packed-frame op code.
const OpPacked = 0x20

// PackedBDI is the packed-frame flag bit requesting BDI-compressed
// sections; a server echoes the client's choice in its response.
const PackedBDI = 1 << 0

// MaxPackedRequests caps sub-requests per packed frame, the paper's
// 64-deep packing window.
const MaxPackedRequests = 64

// PackedSubRequest is one logical request inside a packed frame.
type PackedSubRequest struct {
	Op        byte // OpGetNeighbors or OpGetAttrs
	Neighbors NeighborsRequest
	Attrs     AttrsRequest
}

// PackedSubResponse is one logical response inside a packed frame; Err
// carries a per-sub failure (a *ServerError when the shard rejected the
// sub-request) while its siblings still succeed.
type PackedSubResponse struct {
	Op        byte
	Neighbors NeighborsResponse
	Attrs     AttrsResponse
	Err       error
}

// appendIDSection emits ids as a codec section, through BDI when asked.
// Value serialization runs through pooled scratch, not per-call staging.
func appendIDSection(dst []byte, ids []graph.NodeID, bdi bool, c *mof.VecCodec) []byte {
	if bdi {
		vals := mem.U64s.Get(len(ids))
		for i, v := range ids {
			vals[i] = uint64(v)
		}
		dst = c.AppendU64s(dst, vals)
		mem.U64s.Put(vals)
		return dst
	}
	raw := mem.Bytes.Get(len(ids) * 8)
	for i, v := range ids {
		binary.LittleEndian.PutUint64(raw[i*8:], uint64(v))
	}
	dst = c.AppendBytes(dst, raw, false)
	mem.Bytes.Put(raw)
	return dst
}

// readIDSection decodes an ID section into a fresh exact-size slice the
// caller owns; decode staging stays in pooled scratch.
func readIDSection(src []byte, bdi bool, c *mof.VecCodec) ([]graph.NodeID, []byte, error) {
	if bdi {
		n, _ := mof.SectionCount(src)
		scratch := mem.U64s.Get(int(n))
		vals, rest, err := c.ReadU64sInto(scratch[:0], src)
		if err != nil {
			mem.U64s.Put(scratch)
			return nil, nil, err
		}
		ids := make([]graph.NodeID, len(vals))
		for i, v := range vals {
			ids[i] = graph.NodeID(v)
		}
		mem.U64s.Put(scratch)
		return ids, rest, nil
	}
	raw, rest, err := c.ReadBytes(src)
	if err != nil {
		return nil, nil, err
	}
	if len(raw)%8 != 0 {
		return nil, nil, fmt.Errorf("cluster: ragged ID section of %d bytes", len(raw))
	}
	ids := make([]graph.NodeID, len(raw)/8)
	for i := range ids {
		ids[i] = graph.NodeID(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return ids, rest, nil
}

// EncodePackedRequest serializes subs into one OpPacked frame. bdi asks
// the codec to BDI-compress ID sections (still only when smaller). Sub
// bodies are appended directly into the frame behind a patched length
// prefix, and the frame is sized up front, so encoding is one allocation.
// The frame is deliberately NOT pooled: hedged sends mean a losing
// transport attempt may still read it after the winning call returns.
func EncodePackedRequest(subs []PackedSubRequest, bdi bool, c *mof.VecCodec) ([]byte, error) {
	if len(subs) == 0 || len(subs) > MaxPackedRequests {
		return nil, fmt.Errorf("cluster: %d sub-requests in packed frame (1..%d)", len(subs), MaxPackedRequests)
	}
	flags := byte(0)
	if bdi {
		flags |= PackedBDI
	}
	est := 4
	for _, sub := range subs {
		est += 4 + 5 + 16 + (len(sub.Neighbors.IDs)+len(sub.Attrs.IDs))*8
	}
	out := make([]byte, 0, est)
	out = append(out, OpPacked, flags)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(subs)))
	for _, sub := range subs {
		lenAt := len(out)
		out = append(out, 0, 0, 0, 0) // body length, patched below
		switch sub.Op {
		case OpGetNeighbors:
			out = append(out, OpGetNeighbors)
			out = binary.LittleEndian.AppendUint32(out, sub.Neighbors.MaxPerNode)
			out = appendIDSection(out, sub.Neighbors.IDs, bdi, c)
		case OpGetAttrs:
			out = append(out, OpGetAttrs)
			out = appendIDSection(out, sub.Attrs.IDs, bdi, c)
		default:
			return nil, fmt.Errorf("cluster: op %#x cannot be packed", sub.Op)
		}
		binary.LittleEndian.PutUint32(out[lenAt:], uint32(len(out)-lenAt-4))
	}
	return out, nil
}

// splitPacked validates the shared packed-frame header and cuts the body
// into per-sub slices.
func splitPacked(b []byte) (flags byte, subs [][]byte, err error) {
	if len(b) < 4 || b[0] != OpPacked {
		return 0, nil, fmt.Errorf("cluster: not a packed frame")
	}
	flags = b[1]
	n := int(binary.LittleEndian.Uint16(b[2:]))
	if n == 0 || n > MaxPackedRequests {
		return 0, nil, fmt.Errorf("cluster: packed frame with %d subs (1..%d)", n, MaxPackedRequests)
	}
	rest := b[4:]
	subs = make([][]byte, n)
	for i := range subs {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("cluster: truncated packed frame at sub %d", i)
		}
		l := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(l) || l == 0 {
			return 0, nil, fmt.Errorf("cluster: sub %d claims %d bytes, %d left", i, l, len(rest))
		}
		subs[i], rest = rest[:l], rest[l:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("cluster: %d trailing bytes in packed frame", len(rest))
	}
	return flags, subs, nil
}

// DecodePackedRequest parses an OpPacked request frame.
func DecodePackedRequest(b []byte, c *mof.VecCodec) (subs []PackedSubRequest, bdi bool, err error) {
	flags, bodies, err := splitPacked(b)
	if err != nil {
		return nil, false, err
	}
	bdi = flags&PackedBDI != 0
	subs = make([]PackedSubRequest, len(bodies))
	for i, body := range bodies {
		sub := &subs[i]
		sub.Op = body[0]
		switch sub.Op {
		case OpGetNeighbors:
			if len(body) < 5 {
				return nil, false, fmt.Errorf("cluster: truncated packed neighbors sub %d", i)
			}
			sub.Neighbors.MaxPerNode = binary.LittleEndian.Uint32(body[1:])
			ids, rest, err := readIDSection(body[5:], bdi, c)
			if err != nil {
				return nil, false, err
			}
			if len(rest) != 0 {
				return nil, false, fmt.Errorf("cluster: %d trailing bytes in packed sub %d", len(rest), i)
			}
			sub.Neighbors.IDs = ids
		case OpGetAttrs:
			ids, rest, err := readIDSection(body[1:], bdi, c)
			if err != nil {
				return nil, false, err
			}
			if len(rest) != 0 {
				return nil, false, fmt.Errorf("cluster: %d trailing bytes in packed sub %d", len(rest), i)
			}
			sub.Attrs.IDs = ids
		default:
			return nil, false, fmt.Errorf("cluster: op %#x inside packed frame", sub.Op)
		}
	}
	return subs, bdi, nil
}

// appendSubResponse serializes one sub-response (status byte + body) onto
// the frame. Degree vectors, flattened ID lists, and float serialization
// all run through pooled scratch.
func appendSubResponse(out []byte, sub PackedSubResponse, bdi bool, c *mof.VecCodec) []byte {
	if sub.Err != nil {
		var se *ServerError
		if errors.As(sub.Err, &se) {
			return append(append(out, statusReject), se.Msg...)
		}
		return append(append(out, statusError), sub.Err.Error()...)
	}
	switch sub.Op {
	case OpGetNeighbors:
		out = append(out, statusOK, OpGetNeighbors)
		degs := mem.U32s.Get(len(sub.Neighbors.Lists))
		total := 0
		for i, l := range sub.Neighbors.Lists {
			degs[i] = uint32(len(l))
			total += len(l)
		}
		flat := mem.IDs.Get(total)
		flat = flat[:0]
		for _, l := range sub.Neighbors.Lists {
			flat = append(flat, l...)
		}
		if bdi {
			out = c.AppendU32s(out, degs)
		} else {
			raw := mem.Bytes.Get(len(degs) * 4)
			for i, d := range degs {
				binary.LittleEndian.PutUint32(raw[i*4:], d)
			}
			out = c.AppendBytes(out, raw, false)
			mem.Bytes.Put(raw)
		}
		out = appendIDSection(out, flat, bdi, c)
		mem.IDs.Put(flat)
		mem.U32s.Put(degs)
		return out
	case OpGetAttrs:
		out = append(out, statusOK, OpGetAttrs)
		out = binary.LittleEndian.AppendUint32(out, uint32(sub.Attrs.AttrLen))
		raw := mem.Bytes.Get(len(sub.Attrs.Attrs) * 4)
		for i, f := range sub.Attrs.Attrs {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(f))
		}
		// Attribute payloads go through the data-BDI path; procedurally
		// random features ship raw under only-if-smaller, structured ones
		// shrink.
		out = c.AppendBytes(out, raw, bdi)
		mem.Bytes.Put(raw)
		return out
	default:
		return append(append(out, statusError), fmt.Sprintf("cluster: op %#x cannot be packed", sub.Op)...)
	}
}

// EncodePackedResponse serializes sub-responses into one OpPacked frame,
// appending each body directly behind a patched length prefix. The frame
// itself is not pooled: transports may hand it to the client decode path,
// which aliases uncompressed sections instead of copying.
func EncodePackedResponse(subs []PackedSubResponse, bdi bool, c *mof.VecCodec) []byte {
	flags := byte(0)
	if bdi {
		flags |= PackedBDI
	}
	est := 4
	for _, sub := range subs {
		est += 4 + 16 + len(sub.Attrs.Attrs)*4 + len(sub.Neighbors.Lists)*12
		for _, l := range sub.Neighbors.Lists {
			est += len(l) * 8
		}
	}
	out := make([]byte, 0, est)
	out = append(out, OpPacked, flags)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(subs)))
	for _, sub := range subs {
		lenAt := len(out)
		out = append(out, 0, 0, 0, 0) // body length, patched below
		out = appendSubResponse(out, sub, bdi, c)
		binary.LittleEndian.PutUint32(out[lenAt:], uint32(len(out)-lenAt-4))
	}
	return out
}

// DecodePackedResponse parses an OpPacked response frame. server labels
// reconstructed *ServerError rejections, mirroring the TCP status-byte
// decode.
func DecodePackedResponse(b []byte, server int, c *mof.VecCodec) ([]PackedSubResponse, error) {
	flags, bodies, err := splitPacked(b)
	if err != nil {
		return nil, err
	}
	bdi := flags&PackedBDI != 0
	subs := make([]PackedSubResponse, len(bodies))
	for i, body := range bodies {
		sub := &subs[i]
		switch body[0] {
		case statusReject:
			sub.Err = &ServerError{Server: server, Msg: string(body[1:])}
			continue
		case statusError:
			sub.Err = fmt.Errorf("cluster: server %d: %s", server, string(body[1:]))
			continue
		case statusOK:
		default:
			return nil, fmt.Errorf("cluster: packed sub %d with status %#x", i, body[0])
		}
		body = body[1:]
		if len(body) == 0 {
			return nil, fmt.Errorf("cluster: empty packed sub-response %d", i)
		}
		sub.Op = body[0]
		switch sub.Op {
		case OpGetNeighbors:
			// The degree vector is decode scratch — only the rebuilt lists
			// escape — so it lives in the pool.
			nd, _ := mof.SectionCount(body[1:])
			degScratch := mem.U32s.Get(int(nd))
			degs := degScratch[:0]
			var rest []byte
			if bdi {
				degs, rest, err = c.ReadU32sInto(degs, body[1:])
			} else {
				var raw []byte
				raw, rest, err = c.ReadBytes(body[1:])
				if err == nil {
					if len(raw)%4 != 0 {
						mem.U32s.Put(degScratch)
						return nil, fmt.Errorf("cluster: ragged degree section of %d bytes", len(raw))
					}
					for j := 0; j < len(raw)/4; j++ {
						degs = append(degs, binary.LittleEndian.Uint32(raw[j*4:]))
					}
				}
			}
			if err != nil {
				mem.U32s.Put(degScratch)
				return nil, err
			}
			flat, rest, err := readIDSection(rest, bdi, c)
			if err != nil {
				mem.U32s.Put(degScratch)
				return nil, err
			}
			if len(rest) != 0 {
				mem.U32s.Put(degScratch)
				return nil, fmt.Errorf("cluster: %d trailing bytes in packed sub-response %d", len(rest), i)
			}
			lists := make([][]graph.NodeID, len(degs))
			off := 0
			for j, d := range degs {
				if uint64(off)+uint64(d) > uint64(len(flat)) {
					mem.U32s.Put(degScratch)
					return nil, fmt.Errorf("cluster: degree vector overruns %d flat IDs", len(flat))
				}
				lists[j] = flat[off : off+int(d) : off+int(d)]
				off += int(d)
			}
			if off != len(flat) {
				mem.U32s.Put(degScratch)
				return nil, fmt.Errorf("cluster: %d flat IDs unclaimed by degree vector", len(flat)-off)
			}
			mem.U32s.Put(degScratch)
			sub.Neighbors.Lists = lists
		case OpGetAttrs:
			if len(body) < 5 {
				return nil, fmt.Errorf("cluster: truncated packed attrs sub-response %d", i)
			}
			sub.Attrs.AttrLen = int(binary.LittleEndian.Uint32(body[1:]))
			raw, rest, err := c.ReadBytes(body[5:])
			if err != nil {
				return nil, err
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("cluster: %d trailing bytes in packed sub-response %d", len(rest), i)
			}
			if len(raw)%4 != 0 {
				return nil, fmt.Errorf("cluster: ragged attr payload of %d bytes", len(raw))
			}
			attrs := make([]float32, len(raw)/4)
			for j := range attrs {
				attrs[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
			}
			sub.Attrs.Attrs = attrs
		default:
			return nil, fmt.Errorf("cluster: op %#x inside packed response", sub.Op)
		}
	}
	return subs, nil
}

// WireStats counts a server's wire-level traffic: every frame handled, the
// packed share, and the achieved BDI compression. Layer "cluster.wire".
type WireStats struct {
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	frames    atomic.Int64
	packed    atomic.Int64
	packedSub atomic.Int64
	// Codec is the section codec all packed frames on this server run
	// through; its counters yield the live compression ratio.
	Codec mof.VecCodec
}

// recordFrame counts one handled frame's request/response bytes.
func (w *WireStats) recordFrame(in, out int) {
	if w == nil {
		return
	}
	w.frames.Add(1)
	w.bytesIn.Add(int64(in))
	w.bytesOut.Add(int64(out))
}

// recordPacked counts one packed frame carrying n sub-requests.
func (w *WireStats) recordPacked(n int) {
	if w == nil {
		return
	}
	w.packed.Add(1)
	w.packedSub.Add(int64(n))
}

// PackRatio returns average sub-requests per packed frame (1 when no
// packed frame has arrived).
func (w *WireStats) PackRatio() float64 {
	p := w.packed.Load()
	if p == 0 {
		return 1
	}
	return float64(w.packedSub.Load()) / float64(p)
}

// StatsSnapshot implements stats.Source under "cluster.wire".
func (w *WireStats) StatsSnapshot() stats.Snapshot {
	in, out := w.bytesIn.Load(), w.bytesOut.Load()
	return stats.Snapshot{
		Layer: "cluster.wire",
		Metrics: []stats.Metric{
			{Name: "bytes_total", Value: float64(in + out), Unit: "bytes"},
			{Name: "bytes_in", Value: float64(in), Unit: "bytes"},
			{Name: "bytes_out", Value: float64(out), Unit: "bytes"},
			{Name: "frames_total", Value: float64(w.frames.Load()), Unit: "req"},
			{Name: "packed_frames", Value: float64(w.packed.Load()), Unit: "req"},
			{Name: "packed_requests", Value: float64(w.packedSub.Load()), Unit: "req"},
			{Name: "pack_ratio", Value: w.PackRatio(), Unit: "ratio"},
			{Name: "compression_ratio", Value: w.Codec.Ratio(), Unit: "ratio"},
		},
	}
}
