package riscv

import (
	"strings"
	"testing"
)

func asmWords(t *testing.T, src string) []uint32 {
	t.Helper()
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p.Words
}

func TestEncodings(t *testing.T) {
	// Hand-checked against the RV32I reference encodings.
	cases := []struct {
		src  string
		want uint32
	}{
		{"addi x1, x2, 5", 0x00510093},
		{"add x3, x4, x5", 0x005201b3},
		{"sub x3, x4, x5", 0x405201b3},
		{"lw x6, 8(x7)", 0x0083a303},
		{"sw x6, 8(x7)", 0x0063a423},
		{"lui x1, 0x12345", 0x123450b7},
		{"nop", 0x00000013},
		{"ebreak", 0x00100073},
		{"ecall", 0x00000073},
		{"mul x1, x2, x3", 0x023100b3},
		{"jalr x1, 0(x2)", 0x000100e7},
	}
	for _, c := range cases {
		got := asmWords(t, c.src)
		if got[0] != c.want {
			t.Errorf("%q -> %08x, want %08x", c.src, got[0], c.want)
		}
	}
}

func TestBranchOffsets(t *testing.T) {
	words := asmWords(t, `
	start:
		nop
		beq x1, x2, start
	`)
	// beq at pc=4 to pc=0: offset -4.
	if words[1] != 0xfe208ee3 {
		t.Fatalf("backward beq = %08x", words[1])
	}
	words = asmWords(t, `
		beq x1, x2, fwd
		nop
	fwd:
		nop
	`)
	// beq at 0 to 8: offset +8.
	if words[0] != 0x00208463 {
		t.Fatalf("forward beq = %08x", words[0])
	}
}

func TestJalEncoding(t *testing.T) {
	words := asmWords(t, `
		j next
	next:
		nop
	`)
	// jal x0, +4.
	if words[0] != 0x0040006f {
		t.Fatalf("j +4 = %08x", words[0])
	}
}

func TestLiExpansion(t *testing.T) {
	if w := asmWords(t, "li a0, 100"); len(w) != 1 {
		t.Fatalf("small li expanded to %d words", len(w))
	}
	w := asmWords(t, "li a0, 0x12345678")
	if len(w) != 2 {
		t.Fatalf("large li expanded to %d words", len(w))
	}
	// Negative-lower-half case: 0x12345FFF = lui 0x12346 + addi -1.
	w = asmWords(t, "li a0, 0x12345FFF")
	if len(w) != 2 {
		t.Fatal("boundary li wrong size")
	}
}

func TestLabelsAndSymbols(t *testing.T) {
	p, err := Assemble(`
	entry:
		nop
	after: nop
	`, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["entry"] != 0x100 || p.Symbols["after"] != 0x104 {
		t.Fatalf("symbols = %v", p.Symbols)
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	if _, err := Assemble("a:\nnop\na:\nnop", 0); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestUnknownMnemonicAndLabel(t *testing.T) {
	if _, err := Assemble("frobnicate a0", 0); err == nil {
		t.Fatal("unknown mnemonic accepted")
	}
	if _, err := Assemble("j nowhere", 0); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestBadOperands(t *testing.T) {
	bad := []string{
		"add a0, a1",          // missing operand
		"addi a0, a1, 999999", // immediate too large
		"lw a0, a1",           // not a memory operand
		"slli a0, a1, 40",     // shift out of range
		"qpush 200, a0, a1",   // queue out of range
		"li a0",               // missing immediate
		"add q0, a1, a2",      // bad register
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestComments(t *testing.T) {
	w := asmWords(t, `
		# full-line comment
		nop        # trailing
		nop        // C-style
	`)
	if len(w) != 2 {
		t.Fatalf("comments miscounted: %d words", len(w))
	}
}

func TestDotWord(t *testing.T) {
	w := asmWords(t, ".word 0xdeadbeef")
	if w[0] != 0xdeadbeef {
		t.Fatalf(".word = %08x", w[0])
	}
}

func TestCustomEncodings(t *testing.T) {
	w := asmWords(t, "qpush 3, a0, a1")
	if w[0]&0x7F != 0x0B {
		t.Fatal("qpush opcode wrong")
	}
	if (w[0]>>12)&7 != CustomQPush || w[0]>>25 != 3 {
		t.Fatalf("qpush fields wrong: %08x", w[0])
	}
	w = asmWords(t, "qpop a0, 2")
	if (w[0]>>12)&7 != CustomQPop || w[0]>>25 != 2 || (w[0]>>7)&31 != 10 {
		t.Fatalf("qpop fields wrong: %08x", w[0])
	}
	w = asmWords(t, "qstat t0, 1")
	if (w[0]>>12)&7 != CustomQStat {
		t.Fatalf("qstat fields wrong: %08x", w[0])
	}
}

func TestProgramBytesLittleEndian(t *testing.T) {
	p, _ := Assemble("nop", 0)
	b := p.Bytes()
	if len(b) != 4 || b[0] != 0x13 || b[3] != 0x00 {
		t.Fatalf("bytes = %x", b)
	}
}

func TestRegisterAliases(t *testing.T) {
	// ABI names and x-numbers are interchangeable.
	a := asmWords(t, "add x10, x11, x12")
	b := asmWords(t, "add a0, a1, a2")
	if a[0] != b[0] {
		t.Fatal("ABI aliases encode differently")
	}
	if _, err := regNum("fp"); err != nil {
		t.Fatal("fp alias missing")
	}
}

func TestAssembleRoundTripThroughCPU(t *testing.T) {
	// Every supported mnemonic assembles into something the CPU executes.
	src := `
		li    a0, 1
		li    a1, 2
		add   a2, a0, a1
		sub   a2, a2, a0
		sll   a2, a2, a0
		srl   a2, a2, a0
		sra   a2, a2, a0
		and   a2, a2, a1
		or    a2, a2, a1
		xor   a2, a2, a0
		slt   a3, a0, a1
		sltu  a3, a0, a1
		mul   a4, a0, a1
		div   a4, a4, a1
		sw    a4, 0x100(zero)
		lw    a5, 0x100(zero)
		ebreak
	`
	cpu := run(t, src)
	if cpu.X[reg("a5")] != 1 {
		t.Fatalf("a5 = %d", cpu.X[reg("a5")])
	}
}

func TestBusMapping(t *testing.T) {
	bus := &SystemBus{}
	if err := bus.Map(0, 0x1000, NewRAM(0x1000)); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x800, 0x100, NewRAM(0x100)); err == nil {
		t.Fatal("overlapping map accepted")
	}
	if err := bus.Map(0x1000, 0, NewRAM(1)); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := bus.Load(0x5000, 4); err == nil {
		t.Fatal("unmapped load succeeded")
	}
	// Access straddling a window edge is rejected.
	if _, _, err := bus.Load(0xFFE, 4); err == nil {
		t.Fatal("straddling load succeeded")
	}
}

func TestRAMAccessSizes(t *testing.T) {
	r := NewRAM(16)
	if _, err := r.Write(0, 4, 0xDDCCBBAA); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := r.Read(0, 1); v != 0xAA {
		t.Fatalf("byte read = %#x", v)
	}
	if v, _, _ := r.Read(0, 2); v != 0xBBAA {
		t.Fatalf("half read = %#x", v)
	}
	if _, _, err := r.Read(14, 4); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
	if _, err := r.Write(0, 3, 0); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestMMIOWrapperAddsWait(t *testing.T) {
	inner := NewRAM(16)
	w := MMIOWrapper{Inner: inner, Wait: 99}
	if _, wait, _ := w.Read(0, 4); wait != 99 {
		t.Fatalf("read wait = %d", wait)
	}
	if wait, _ := w.Write(0, 4, 1); wait != 99 {
		t.Fatalf("write wait = %d", wait)
	}
}

func TestMMIOLatencyVisibleInCycles(t *testing.T) {
	bus := &SystemBus{}
	ram := NewRAM(1 << 10)
	if err := bus.Map(0, 1<<10, ram); err != nil {
		t.Fatal(err)
	}
	dev := NewRAM(16)
	if err := bus.Map(0x4000_0000, 16, MMIOWrapper{Inner: dev, Wait: 100}); err != nil {
		t.Fatal(err)
	}
	src := `
		li t0, 0x40000000
		sw a0, 0(t0)
		ebreak
	`
	prog, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	copy(ram.Data, prog.Bytes())
	cpu := NewCPU(bus)
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.Cycles < 100 {
		t.Fatalf("MMIO store cost %d cycles, want ≥100", cpu.Cycles)
	}
}

func TestTrapErrorMessage(t *testing.T) {
	trap := &Trap{PC: 0x10, Instr: 0xDEAD, Reason: "nope"}
	msg := trap.Error()
	if !strings.Contains(msg, "0x10") || !strings.Contains(msg, "nope") {
		t.Fatalf("trap message uninformative: %s", msg)
	}
}
