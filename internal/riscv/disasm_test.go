package riscv

import (
	"strings"
	"testing"
)

func TestDisassembleKnown(t *testing.T) {
	cases := map[string]string{
		"addi a0, a1, 5":      "addi a0, a1, 5",
		"add a0, a1, a2":      "add a0, a1, a2",
		"sub t0, t1, t2":      "sub t0, t1, t2",
		"lw a0, 8(sp)":        "lw a0, 8(sp)",
		"sw a0, -4(sp)":       "sw a0, -4(sp)",
		"nop":                 "nop",
		"ebreak":              "ebreak",
		"ecall":               "ecall",
		"ret":                 "ret",
		"mul a0, a1, a2":      "mul a0, a1, a2",
		"divu a0, a1, a2":     "divu a0, a1, a2",
		"mv a0, a1":           "mv a0, a1",
		"li a0, 42":           "li a0, 42",
		"slli a0, a1, 3":      "slli a0, a1, 3",
		"srai a0, a1, 3":      "srai a0, a1, 3",
		"lui a0, 0x12345":     "lui a0, 0x12345",
		"qpush 2, a0, a1":     "qpush 2, a0, a1",
		"qpop a0, 1":          "qpop a0, 1",
		"qstat t0, 3":         "qstat t0, 3",
		"axop a0, a1":         "axop a0, a1",
		"rdcycle a0":          "rdcycle a0",
		"csrrw a0, 0x340, a1": "csrrw a0, 0x340, a1",
	}
	for src, want := range cases {
		p, err := Assemble(src, 0)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := Disassemble(p.Words[0]); got != want {
			t.Errorf("%q disassembles to %q, want %q", src, got, want)
		}
	}
}

func TestDisassembleBranchesAndJumps(t *testing.T) {
	p, err := Assemble(`
	start:
		beq a0, a1, start
		j start
		jal ra, start
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Disassemble(p.Words[0]); got != "beq a0, a1, +0" {
		t.Fatalf("beq = %q", got)
	}
	if got := Disassemble(p.Words[1]); got != "j -4" {
		t.Fatalf("j = %q", got)
	}
	if got := Disassemble(p.Words[2]); got != "jal ra, -8" {
		t.Fatalf("jal = %q", got)
	}
}

func TestDisassembleUnknown(t *testing.T) {
	if got := Disassemble(0xFFFFFFFF); !strings.HasPrefix(got, ".word") {
		t.Fatalf("unknown word = %q", got)
	}
	if got := Disassemble(0x0000007F); !strings.HasPrefix(got, ".word") {
		t.Fatalf("bad opcode = %q", got)
	}
}

// TestDisassembleRoundTrip re-assembles the disassembly of every encodable
// non-branch instruction and checks the words match.
func TestDisassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"addi a0, a1, -7", "andi t0, t1, 255", "ori s0, s1, 16",
		"xori a2, a3, 1", "slti a4, a5, -3", "sltiu a6, a7, 9",
		"add t3, t4, t5", "sub s2, s3, s4", "and s5, s6, s7",
		"or s8, s9, s10", "xor s11, t6, zero", "sll a0, a1, a2",
		"srl a0, a1, a2", "sra a0, a1, a2", "slt a0, a1, a2",
		"sltu a0, a1, a2", "mul a0, a1, a2", "mulh a0, a1, a2",
		"div a0, a1, a2", "rem a0, a1, a2", "lb a0, 1(a1)",
		"lh a0, 2(a1)", "lw a0, 4(a1)", "lbu a0, 1(a1)",
		"lhu a0, 2(a1)", "sb a0, 1(a1)", "sh a0, 2(a1)",
		"sw a0, 4(a1)", "lui a0, 0xABCDE", "nop", "ebreak", "ret",
		"qpush 5, t0, t1", "qpop a0, 4", "axop t0, t1",
	}
	for _, src := range srcs {
		p1, err := Assemble(src, 0)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		dis := Disassemble(p1.Words[0])
		p2, err := Assemble(dis, 0)
		if err != nil {
			t.Fatalf("%q → %q does not re-assemble: %v", src, dis, err)
		}
		if p1.Words[0] != p2.Words[0] {
			t.Errorf("%q → %q → %08x, want %08x", src, dis, p2.Words[0], p1.Words[0])
		}
	}
}

func TestDisassembleProgramListing(t *testing.T) {
	p, err := Assemble("nop\nebreak", 0x100)
	if err != nil {
		t.Fatal(err)
	}
	listing := DisassembleProgram(p.Words, 0x100)
	if !strings.Contains(listing, "00000100: 00000013  nop") {
		t.Fatalf("listing = %q", listing)
	}
	if !strings.Contains(listing, "ebreak") {
		t.Fatal("listing missing ebreak")
	}
}

func TestRegNameFallback(t *testing.T) {
	if regName(10) != "a0" || regName(0) != "zero" {
		t.Fatal("ABI names wrong")
	}
	if regName(99) != "x99" {
		t.Fatal("out-of-range register name wrong")
	}
}
