package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// A small two-pass RV32IM assembler for writing controller programs in
// tests, examples and cmd/axe-asm. Supported syntax:
//
//	label:            # comments with '#' or '//'
//	    li   a0, 1024
//	    lw   t0, 8(a1)
//	    beq  t0, zero, done
//	    qpush 0, a0, a1   # custom-0: push {rs1,rs2} to queue 0
//	    qpop  a0, 1       # custom-0: pop queue 1 into a0
//	    qstat a0, 1       # custom-0: occupancy of queue 1
//	    axop  a0, a1      # custom-0: tightly-coupled accelerator op
//	    .word 0xdeadbeef
//
// Pseudo-instructions: li, mv, nop, j, ret, call (near), rdcycle.

var regNames = map[string]uint32{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
	"a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
	"s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func regNum(s string) (uint32, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := regNames[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return uint32(n), nil
		}
	}
	return 0, fmt.Errorf("asm: bad register %q", s)
}

// Custom-0 funct3 assignments shared with the QRCH hub.
const (
	CustomQPush = 0
	CustomQPop  = 1
	CustomQStat = 2
	CustomAxOp  = 3
)

// Program is assembled machine code plus its symbol table.
type Program struct {
	Words   []uint32
	Symbols map[string]uint32
}

// Bytes returns the little-endian byte image.
func (p *Program) Bytes() []byte {
	out := make([]byte, len(p.Words)*4)
	for i, w := range p.Words {
		out[i*4] = byte(w)
		out[i*4+1] = byte(w >> 8)
		out[i*4+2] = byte(w >> 16)
		out[i*4+3] = byte(w >> 24)
	}
	return out
}

type asmLine struct {
	num    int
	mnem   string
	args   []string
	addr   uint32
	nwords int
}

// Assemble translates source into a Program loaded at base.
func Assemble(source string, base uint32) (*Program, error) {
	symbols := map[string]uint32{}
	var lines []asmLine
	pc := base
	for i, raw := range strings.Split(source, "\n") {
		line := raw
		if j := strings.IndexAny(line, "#"); j >= 0 {
			line = line[:j]
		}
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			if j := strings.Index(line, ":"); j >= 0 {
				label := strings.TrimSpace(line[:j])
				if label == "" || strings.ContainsAny(label, " \t,") {
					return nil, fmt.Errorf("asm: line %d: bad label %q", i+1, label)
				}
				if _, dup := symbols[label]; dup {
					return nil, fmt.Errorf("asm: line %d: duplicate label %q", i+1, label)
				}
				symbols[label] = pc
				line = strings.TrimSpace(line[j+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])
		var args []string
		if rest != "" {
			for _, a := range strings.Split(rest, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		l := asmLine{num: i + 1, mnem: mnem, args: args, addr: pc, nwords: 1}
		if mnem == "li" {
			// li may expand to lui+addi.
			if len(args) != 2 {
				return nil, fmt.Errorf("asm: line %d: li needs 2 args", i+1)
			}
			v, err := parseImm(args[1], symbols)
			if err == nil && !fitsI12(v) {
				l.nwords = 2
			} else if err != nil {
				// Unknown symbol in pass 1: reserve worst case.
				l.nwords = 2
			}
		}
		lines = append(lines, l)
		pc += uint32(4 * l.nwords)
	}

	prog := &Program{Symbols: symbols}
	for _, l := range lines {
		words, err := encodeLine(l, symbols)
		if err != nil {
			return nil, err
		}
		for len(words) < l.nwords {
			words = append(words, encodeI(0x13, 0, 0, 0, 0)) // pad with nop
		}
		if len(words) != l.nwords {
			return nil, fmt.Errorf("asm: line %d: size changed between passes", l.num)
		}
		prog.Words = append(prog.Words, words...)
	}
	return prog, nil
}

func parseImm(s string, symbols map[string]uint32) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := symbols[s]; ok {
		return int64(v), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("asm: bad immediate %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func fitsI12(v int64) bool { return v >= -2048 && v < 2048 }

func encodeR(op, funct3, funct7, rd, rs1, rs2 uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | op
}

func encodeI(op, funct3, rd, rs1 uint32, imm int64) uint32 {
	return uint32(imm&0xfff)<<20 | rs1<<15 | funct3<<12 | rd<<7 | op
}

func encodeS(op, funct3, rs1, rs2 uint32, imm int64) uint32 {
	i := uint32(imm) & 0xfff
	return (i>>5)<<25 | rs2<<20 | rs1<<15 | funct3<<12 | (i&0x1f)<<7 | op
}

func encodeB(funct3, rs1, rs2 uint32, off int64) uint32 {
	i := uint32(off) & 0x1fff
	return (i>>12)<<31 | ((i >> 5 & 0x3f) << 25) | rs2<<20 | rs1<<15 | funct3<<12 |
		((i >> 1 & 0xf) << 8) | ((i >> 11 & 1) << 7) | 0x63
}

func encodeJ(rd uint32, off int64) uint32 {
	i := uint32(off) & 0x1fffff
	return (i>>20)<<31 | ((i >> 1 & 0x3ff) << 21) | ((i >> 11 & 1) << 20) | ((i >> 12 & 0xff) << 12) | rd<<7 | 0x6f
}

func memOperand(s string) (reg uint32, off int64, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("asm: bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr, nil)
	if err != nil {
		return 0, 0, err
	}
	reg, err = regNum(s[open+1 : close])
	return reg, off, err
}

type rKind struct{ funct3, funct7 uint32 }

var rOps = map[string]rKind{
	"add": {0, 0}, "sub": {0, 0x20}, "sll": {1, 0}, "slt": {2, 0},
	"sltu": {3, 0}, "xor": {4, 0}, "srl": {5, 0}, "sra": {5, 0x20},
	"or": {6, 0}, "and": {7, 0},
	"mul": {0, 1}, "mulh": {1, 1}, "mulhsu": {2, 1}, "mulhu": {3, 1},
	"div": {4, 1}, "divu": {5, 1}, "rem": {6, 1}, "remu": {7, 1},
}

var iOps = map[string]uint32{
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}

var loadOps = map[string]uint32{"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
var storeOps = map[string]uint32{"sb": 0, "sh": 1, "sw": 2}
var branchOps = map[string]uint32{"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

func encodeLine(l asmLine, symbols map[string]uint32) ([]uint32, error) {
	errf := func(format string, a ...any) error {
		return fmt.Errorf("asm: line %d (%s): %s", l.num, l.mnem, fmt.Sprintf(format, a...))
	}
	need := func(n int) error {
		if len(l.args) != n {
			return errf("want %d operands, got %d", n, len(l.args))
		}
		return nil
	}
	switch l.mnem {
	case ".word":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseImm(l.args[0], symbols)
		if err != nil {
			return nil, errf("%v", err)
		}
		return []uint32{uint32(v)}, nil
	case "nop":
		return []uint32{encodeI(0x13, 0, 0, 0, 0)}, nil
	case "ret":
		return []uint32{encodeI(0x67, 0, 0, 1, 0)}, nil
	case "ecall":
		return []uint32{0x73}, nil
	case "ebreak":
		return []uint32{0x00100073}, nil
	case "rdcycle":
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		return []uint32{encodeI(0x73, 2, rd, 0, int64(CSRCycle))}, nil
	case "csrrw", "csrrs", "csrrc":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		csr, err := parseImm(l.args[1], symbols)
		if err != nil || csr < 0 || csr > 0xFFF {
			return nil, errf("bad CSR %q", l.args[1])
		}
		rs1, err := regNum(l.args[2])
		if err != nil {
			return nil, errf("%v", err)
		}
		f3 := map[string]uint32{"csrrw": 1, "csrrs": 2, "csrrc": 3}[l.mnem]
		return []uint32{encodeI(0x73, f3, rd, rs1, csr)}, nil
	case "csrrwi":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		csr, err := parseImm(l.args[1], symbols)
		if err != nil || csr < 0 || csr > 0xFFF {
			return nil, errf("bad CSR %q", l.args[1])
		}
		imm, err := parseImm(l.args[2], nil)
		if err != nil || imm < 0 || imm > 31 {
			return nil, errf("bad zimm %q", l.args[2])
		}
		return []uint32{encodeI(0x73, 5, rd, uint32(imm), csr)}, nil
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		v, err := parseImm(l.args[1], symbols)
		if err != nil {
			return nil, errf("%v", err)
		}
		if fitsI12(v) && l.nwords == 1 {
			return []uint32{encodeI(0x13, 0, rd, 0, v)}, nil
		}
		upper := uint32(v+0x800) & 0xfffff000
		lower := int64(int32(uint32(v) - upper))
		return []uint32{
			upper | rd<<7 | 0x37,
			encodeI(0x13, 0, rd, rd, lower),
		}, nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := regNum(l.args[0])
		rs, err2 := regNum(l.args[1])
		if err1 != nil || err2 != nil {
			return nil, errf("bad registers")
		}
		return []uint32{encodeI(0x13, 0, rd, rs, 0)}, nil
	case "lui":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		v, err := parseImm(l.args[1], symbols)
		if err != nil {
			return nil, errf("%v", err)
		}
		return []uint32{uint32(v)<<12 | rd<<7 | 0x37}, nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		target, ok := symbols[l.args[0]]
		if !ok {
			return nil, errf("unknown label %q", l.args[0])
		}
		return []uint32{encodeJ(0, int64(target)-int64(l.addr))}, nil
	case "jal":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		target, ok := symbols[l.args[1]]
		if !ok {
			return nil, errf("unknown label %q", l.args[1])
		}
		return []uint32{encodeJ(rd, int64(target)-int64(l.addr))}, nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		target, ok := symbols[l.args[0]]
		if !ok {
			return nil, errf("unknown label %q", l.args[0])
		}
		return []uint32{encodeJ(1, int64(target)-int64(l.addr))}, nil
	case "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		rs, off, err := memOperand(l.args[1])
		if err != nil {
			return nil, errf("%v", err)
		}
		return []uint32{encodeI(0x67, 0, rd, rs, off)}, nil
	case "qpush":
		if err := need(3); err != nil {
			return nil, err
		}
		q, err := parseImm(l.args[0], nil)
		if err != nil || q < 0 || q > 127 {
			return nil, errf("bad queue %q", l.args[0])
		}
		rs1, err1 := regNum(l.args[1])
		rs2, err2 := regNum(l.args[2])
		if err1 != nil || err2 != nil {
			return nil, errf("bad registers")
		}
		return []uint32{encodeR(0x0b, CustomQPush, uint32(q), 0, rs1, rs2)}, nil
	case "qpop", "qstat":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		q, err := parseImm(l.args[1], nil)
		if err != nil || q < 0 || q > 127 {
			return nil, errf("bad queue %q", l.args[1])
		}
		f3 := uint32(CustomQPop)
		if l.mnem == "qstat" {
			f3 = CustomQStat
		}
		return []uint32{encodeR(0x0b, f3, uint32(q), rd, 0, 0)}, nil
	case "axop":
		if err := need(2); err != nil {
			return nil, err
		}
		rs1, err1 := regNum(l.args[0])
		rs2, err2 := regNum(l.args[1])
		if err1 != nil || err2 != nil {
			return nil, errf("bad registers")
		}
		return []uint32{encodeR(0x0b, CustomAxOp, 0, 0, rs1, rs2)}, nil
	}

	if k, ok := rOps[l.mnem]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := regNum(l.args[0])
		rs1, e2 := regNum(l.args[1])
		rs2, e3 := regNum(l.args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, errf("bad registers")
		}
		return []uint32{encodeR(0x33, k.funct3, k.funct7, rd, rs1, rs2)}, nil
	}
	if f3, ok := iOps[l.mnem]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := regNum(l.args[0])
		rs1, e2 := regNum(l.args[1])
		if e1 != nil || e2 != nil {
			return nil, errf("bad registers")
		}
		v, err := parseImm(l.args[2], symbols)
		if err != nil || !fitsI12(v) {
			return nil, errf("bad immediate %q", l.args[2])
		}
		return []uint32{encodeI(0x13, f3, rd, rs1, v)}, nil
	}
	switch l.mnem {
	case "slli", "srli", "srai":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := regNum(l.args[0])
		rs1, e2 := regNum(l.args[1])
		if e1 != nil || e2 != nil {
			return nil, errf("bad registers")
		}
		sh, err := parseImm(l.args[2], nil)
		if err != nil || sh < 0 || sh > 31 {
			return nil, errf("bad shift %q", l.args[2])
		}
		f3 := uint32(1)
		f7 := uint32(0)
		if l.mnem != "slli" {
			f3 = 5
			if l.mnem == "srai" {
				f7 = 0x20
			}
		}
		return []uint32{encodeR(0x13, f3, f7, rd, rs1, uint32(sh))}, nil
	}
	if f3, ok := loadOps[l.mnem]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		rs, off, err := memOperand(l.args[1])
		if err != nil {
			return nil, errf("%v", err)
		}
		return []uint32{encodeI(0x03, f3, rd, rs, off)}, nil
	}
	if f3, ok := storeOps[l.mnem]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := regNum(l.args[0])
		if err != nil {
			return nil, errf("%v", err)
		}
		rs1, off, err := memOperand(l.args[1])
		if err != nil {
			return nil, errf("%v", err)
		}
		return []uint32{encodeS(0x23, f3, rs1, rs2, off)}, nil
	}
	if f3, ok := branchOps[l.mnem]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, e1 := regNum(l.args[0])
		rs2, e2 := regNum(l.args[1])
		if e1 != nil || e2 != nil {
			return nil, errf("bad registers")
		}
		target, ok := symbols[l.args[2]]
		if !ok {
			return nil, errf("unknown label %q", l.args[2])
		}
		return []uint32{encodeB(f3, rs1, rs2, int64(target)-int64(l.addr))}, nil
	}
	return nil, errf("unknown mnemonic")
}
