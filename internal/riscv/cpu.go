// Package riscv implements the control system of Section 4.4: an RV32IM
// instruction-set simulator standing in for the Xuantie E906 core, a small
// assembler for control programs, a memory bus with MMIO devices, and the
// custom-instruction hook through which the QRCH coprocessor hub attaches.
// Cycle accounting follows the paper's Table 7 comparison: plain
// instructions take 1 cycle, bus accesses add device-dependent wait cycles,
// and custom instructions cost whatever their handler reports.
package riscv

import (
	"errors"
	"fmt"
)

// Bus is the CPU's memory interface. Loads and stores return extra wait
// cycles beyond the base instruction cost (0 for TCM, ~100 for MMIO).
type Bus interface {
	Load(addr uint32, size int) (val uint32, wait int, err error)
	Store(addr uint32, size int, val uint32) (wait int, err error)
}

// CustomFn handles a custom-0 (opcode 0x0B) instruction. It receives the
// decoded fields and the rs1/rs2 values and returns the rd writeback value
// and the instruction's cycle cost (≥1).
type CustomFn func(cpu *CPU, funct3, funct7 uint32, rs1Val, rs2Val uint32) (rd uint32, cycles int, err error)

// CPU is an RV32IM hart.
type CPU struct {
	X      [32]uint32
	PC     uint32
	Bus    Bus
	Cycles uint64
	Halted bool
	// Custom dispatches custom-0 instructions (nil traps them).
	Custom CustomFn
	// Retired counts executed instructions.
	Retired uint64

	csrs map[uint32]uint32
}

// Trap is an execution fault.
type Trap struct {
	PC     uint32
	Instr  uint32
	Reason string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("riscv: trap at pc=%#x instr=%#08x: %s", t.PC, t.Instr, t.Reason)
}

// ErrHalted is returned by Step after EBREAK/ECALL halts the hart.
var ErrHalted = errors.New("riscv: hart halted")

// NewCPU creates a hart with the given bus, PC 0.
func NewCPU(bus Bus) *CPU {
	return &CPU{Bus: bus, csrs: make(map[uint32]uint32)}
}

// Reset clears registers and counters, setting PC to pc.
func (c *CPU) Reset(pc uint32) {
	c.X = [32]uint32{}
	c.PC = pc
	c.Cycles = 0
	c.Retired = 0
	c.Halted = false
	c.csrs = make(map[uint32]uint32)
}

// CSR numbers.
const (
	CSRCycle   = 0xC00
	CSRCycleH  = 0xC80
	CSRInstret = 0xC02
)

func (c *CPU) readCSR(num uint32) uint32 {
	switch num {
	case CSRCycle:
		return uint32(c.Cycles)
	case CSRCycleH:
		return uint32(c.Cycles >> 32)
	case CSRInstret:
		return uint32(c.Retired)
	default:
		return c.csrs[num]
	}
}

func (c *CPU) writeCSR(num, val uint32) { c.csrs[num] = val }

func signExtend(v uint32, bits int) uint32 {
	shift := 32 - bits
	return uint32(int32(v<<shift) >> shift)
}

// Step executes one instruction. It returns ErrHalted once the hart has
// stopped, or a *Trap on faults.
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	instr, wait, err := c.Bus.Load(c.PC, 4)
	if err != nil {
		return &Trap{PC: c.PC, Reason: "fetch: " + err.Error()}
	}
	c.Cycles += uint64(wait)
	op := instr & 0x7f
	rd := (instr >> 7) & 0x1f
	funct3 := (instr >> 12) & 0x7
	rs1 := (instr >> 15) & 0x1f
	rs2 := (instr >> 20) & 0x1f
	funct7 := instr >> 25
	nextPC := c.PC + 4
	cycles := 1

	setRD := func(v uint32) {
		if rd != 0 {
			c.X[rd] = v
		}
	}

	switch op {
	case 0x37: // LUI
		setRD(instr & 0xfffff000)
	case 0x17: // AUIPC
		setRD(c.PC + (instr & 0xfffff000))
	case 0x6f: // JAL
		imm := (instr>>31)<<20 | ((instr >> 12) & 0xff << 12) | ((instr >> 20 & 1) << 11) | ((instr >> 21 & 0x3ff) << 1)
		imm = signExtend(imm, 21)
		setRD(nextPC)
		nextPC = c.PC + imm
		cycles = 2
	case 0x67: // JALR
		imm := signExtend(instr>>20, 12)
		t := (c.X[rs1] + imm) &^ 1
		setRD(nextPC)
		nextPC = t
		cycles = 2
	case 0x63: // branches
		imm := (instr>>31)<<12 | ((instr >> 7 & 1) << 11) | ((instr >> 25 & 0x3f) << 5) | ((instr >> 8 & 0xf) << 1)
		imm = signExtend(imm, 13)
		var take bool
		a, b := c.X[rs1], c.X[rs2]
		switch funct3 {
		case 0:
			take = a == b
		case 1:
			take = a != b
		case 4:
			take = int32(a) < int32(b)
		case 5:
			take = int32(a) >= int32(b)
		case 6:
			take = a < b
		case 7:
			take = a >= b
		default:
			return &Trap{PC: c.PC, Instr: instr, Reason: "bad branch funct3"}
		}
		if take {
			nextPC = c.PC + imm
			cycles = 2
		}
	case 0x03: // loads
		imm := signExtend(instr>>20, 12)
		addr := c.X[rs1] + imm
		var size int
		switch funct3 & 3 {
		case 0:
			size = 1
		case 1:
			size = 2
		case 2:
			size = 4
		default:
			return &Trap{PC: c.PC, Instr: instr, Reason: "bad load size"}
		}
		v, wait, err := c.Bus.Load(addr, size)
		if err != nil {
			return &Trap{PC: c.PC, Instr: instr, Reason: "load: " + err.Error()}
		}
		cycles += wait + 1
		switch funct3 {
		case 0:
			v = signExtend(v, 8)
		case 1:
			v = signExtend(v, 16)
		}
		setRD(v)
	case 0x23: // stores
		imm := signExtend((funct7<<5)|rd, 12)
		addr := c.X[rs1] + imm
		var size int
		switch funct3 {
		case 0:
			size = 1
		case 1:
			size = 2
		case 2:
			size = 4
		default:
			return &Trap{PC: c.PC, Instr: instr, Reason: "bad store size"}
		}
		wait, err := c.Bus.Store(addr, size, c.X[rs2])
		if err != nil {
			return &Trap{PC: c.PC, Instr: instr, Reason: "store: " + err.Error()}
		}
		cycles += wait
	case 0x13: // op-imm
		imm := signExtend(instr>>20, 12)
		sh := rs2
		switch funct3 {
		case 0:
			setRD(c.X[rs1] + imm)
		case 2:
			setRD(boolTo(int32(c.X[rs1]) < int32(imm)))
		case 3:
			setRD(boolTo(c.X[rs1] < imm))
		case 4:
			setRD(c.X[rs1] ^ imm)
		case 6:
			setRD(c.X[rs1] | imm)
		case 7:
			setRD(c.X[rs1] & imm)
		case 1:
			setRD(c.X[rs1] << sh)
		case 5:
			if funct7&0x20 != 0 {
				setRD(uint32(int32(c.X[rs1]) >> sh))
			} else {
				setRD(c.X[rs1] >> sh)
			}
		}
	case 0x33: // op
		a, b := c.X[rs1], c.X[rs2]
		if funct7 == 1 { // M extension
			switch funct3 {
			case 0:
				setRD(a * b)
			case 1:
				setRD(uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32))
			case 2:
				setRD(uint32(uint64(int64(int32(a))*int64(b)) >> 32))
			case 3:
				setRD(uint32(uint64(a) * uint64(b) >> 32))
			case 4:
				setRD(divS(a, b))
			case 5:
				setRD(divU(a, b))
			case 6:
				setRD(remS(a, b))
			case 7:
				setRD(remU(a, b))
			}
			cycles = 3
			break
		}
		switch funct3 {
		case 0:
			if funct7&0x20 != 0 {
				setRD(a - b)
			} else {
				setRD(a + b)
			}
		case 1:
			setRD(a << (b & 31))
		case 2:
			setRD(boolTo(int32(a) < int32(b)))
		case 3:
			setRD(boolTo(a < b))
		case 4:
			setRD(a ^ b)
		case 5:
			if funct7&0x20 != 0 {
				setRD(uint32(int32(a) >> (b & 31)))
			} else {
				setRD(a >> (b & 31))
			}
		case 6:
			setRD(a | b)
		case 7:
			setRD(a & b)
		}
	case 0x73: // SYSTEM
		csr := instr >> 20
		switch funct3 {
		case 0: // ECALL/EBREAK halt the hart in this controller context.
			c.Halted = true
		case 1: // CSRRW
			old := c.readCSR(csr)
			c.writeCSR(csr, c.X[rs1])
			setRD(old)
		case 2: // CSRRS
			old := c.readCSR(csr)
			if rs1 != 0 {
				c.writeCSR(csr, old|c.X[rs1])
			}
			setRD(old)
		case 3: // CSRRC
			old := c.readCSR(csr)
			if rs1 != 0 {
				c.writeCSR(csr, old&^c.X[rs1])
			}
			setRD(old)
		case 5: // CSRRWI
			old := c.readCSR(csr)
			c.writeCSR(csr, rs1)
			setRD(old)
		default:
			return &Trap{PC: c.PC, Instr: instr, Reason: "unsupported SYSTEM funct3"}
		}
	case 0x0b: // custom-0: QRCH / ISA-extension hook
		if c.Custom == nil {
			return &Trap{PC: c.PC, Instr: instr, Reason: "custom-0 with no handler"}
		}
		v, cyc, err := c.Custom(c, funct3, funct7, c.X[rs1], c.X[rs2])
		if err != nil {
			return &Trap{PC: c.PC, Instr: instr, Reason: "custom: " + err.Error()}
		}
		if cyc < 1 {
			cyc = 1
		}
		cycles = cyc
		setRD(v)
	case 0x0f: // FENCE — no-op in this single-hart model
	default:
		return &Trap{PC: c.PC, Instr: instr, Reason: fmt.Sprintf("unknown opcode %#x", op)}
	}

	c.X[0] = 0
	c.PC = nextPC
	c.Cycles += uint64(cycles)
	c.Retired++
	if c.Halted {
		return ErrHalted
	}
	return nil
}

// Run executes until halt or maxInstrs, returning an error on trap or when
// the budget is exhausted without halting.
func (c *CPU) Run(maxInstrs uint64) error {
	for i := uint64(0); i < maxInstrs; i++ {
		if err := c.Step(); err != nil {
			if errors.Is(err, ErrHalted) {
				return nil
			}
			return err
		}
	}
	return fmt.Errorf("riscv: %d instructions executed without halting", maxInstrs)
}

func boolTo(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		return 0xffffffff
	}
	if int32(a) == -1<<31 && int32(b) == -1 {
		return a
	}
	return uint32(int32(a) / int32(b))
}

func divU(a, b uint32) uint32 {
	if b == 0 {
		return 0xffffffff
	}
	return a / b
}

func remS(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	if int32(a) == -1<<31 && int32(b) == -1 {
		return 0
	}
	return uint32(int32(a) % int32(b))
}

func remU(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}
