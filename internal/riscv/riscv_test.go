package riscv

import (
	"errors"
	"testing"
)

func makeCPU(t *testing.T, source string) (*CPU, *RAM) {
	t.Helper()
	bus := &SystemBus{}
	ram := NewRAM(64 << 10)
	if err := bus.Map(0, 64<<10, ram); err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(source, 0)
	if err != nil {
		t.Fatal(err)
	}
	copy(ram.Data, prog.Bytes())
	cpu := NewCPU(bus)
	return cpu, ram
}

func run(t *testing.T, source string) *CPU {
	t.Helper()
	cpu, _ := makeCPU(t, source)
	if err := cpu.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	return cpu
}

func reg(name string) uint32 { n, _ := regNum(name); return n }

func TestArithmetic(t *testing.T) {
	cpu := run(t, `
		li   a0, 20
		li   a1, 22
		add  a2, a0, a1     # 42
		sub  a3, a0, a1     # -2
		xor  a4, a0, a1     # 2
		or   a5, a0, a1     # 22|20
		and  a6, a0, a1     # 22&20
		ebreak
	`)
	if cpu.X[reg("a2")] != 42 {
		t.Fatalf("add = %d", cpu.X[reg("a2")])
	}
	if int32(cpu.X[reg("a3")]) != -2 {
		t.Fatalf("sub = %d", int32(cpu.X[reg("a3")]))
	}
	if cpu.X[reg("a4")] != 20^22 || cpu.X[reg("a5")] != 20|22 || cpu.X[reg("a6")] != 20&22 {
		t.Fatal("logic ops wrong")
	}
}

func TestShiftsAndCompares(t *testing.T) {
	cpu := run(t, `
		li   a0, -8
		srai a1, a0, 1      # -4
		srli a2, a0, 28     # 0xF
		slli a3, a0, 1      # -16
		slti a4, a0, 0      # 1
		sltiu a5, a0, 0     # 0 (unsigned -8 is huge)
		li   t0, 3
		li   t1, 5
		slt  a6, t0, t1     # 1
		sltu a7, t1, t0     # 0
		ebreak
	`)
	if int32(cpu.X[reg("a1")]) != -4 || cpu.X[reg("a2")] != 0xF || int32(cpu.X[reg("a3")]) != -16 {
		t.Fatal("shifts wrong")
	}
	if cpu.X[reg("a4")] != 1 || cpu.X[reg("a5")] != 0 || cpu.X[reg("a6")] != 1 || cpu.X[reg("a7")] != 0 {
		t.Fatal("compares wrong")
	}
}

func TestMulDiv(t *testing.T) {
	cpu := run(t, `
		li   a0, -6
		li   a1, 7
		mul  a2, a0, a1     # -42
		div  a3, a0, a1     # 0 (rounds toward zero)
		rem  a4, a0, a1     # -6
		li   t0, 100
		li   t1, 7
		divu a5, t0, t1     # 14
		remu a6, t0, t1     # 2
		ebreak
	`)
	if int32(cpu.X[reg("a2")]) != -42 {
		t.Fatalf("mul = %d", int32(cpu.X[reg("a2")]))
	}
	if cpu.X[reg("a3")] != 0 || int32(cpu.X[reg("a4")]) != -6 {
		t.Fatal("signed div/rem wrong")
	}
	if cpu.X[reg("a5")] != 14 || cpu.X[reg("a6")] != 2 {
		t.Fatal("unsigned div/rem wrong")
	}
}

func TestDivEdgeCases(t *testing.T) {
	cpu := run(t, `
		li   a0, 5
		li   zero, 0
		div  a1, a0, zero   # /0 -> -1
		rem  a2, a0, zero   # %0 -> a0
		li   t0, 1
		slli t0, t0, 31     # INT_MIN
		li   t1, -1
		div  a3, t0, t1     # overflow -> INT_MIN
		rem  a4, t0, t1     # -> 0
		ebreak
	`)
	if cpu.X[reg("a1")] != 0xFFFFFFFF || cpu.X[reg("a2")] != 5 {
		t.Fatal("divide-by-zero semantics wrong")
	}
	if cpu.X[reg("a3")] != 1<<31 || cpu.X[reg("a4")] != 0 {
		t.Fatal("overflow semantics wrong")
	}
}

func TestLoadsStores(t *testing.T) {
	cpu := run(t, `
		li   t0, 0x1000
		li   a0, -2        # 0xFFFFFFFE
		sw   a0, 0(t0)
		lw   a1, 0(t0)
		lh   a2, 0(t0)      # sign-extended 0xFFFE
		lhu  a3, 0(t0)      # 0xFFFE
		lb   a4, 0(t0)      # -2
		lbu  a5, 0(t0)      # 0xFE
		sb   a0, 8(t0)
		lw   a6, 8(t0)      # only low byte written
		ebreak
	`)
	if cpu.X[reg("a1")] != 0xFFFFFFFE {
		t.Fatal("lw wrong")
	}
	if cpu.X[reg("a2")] != 0xFFFFFFFE || cpu.X[reg("a3")] != 0xFFFE {
		t.Fatal("lh/lhu wrong")
	}
	if int32(cpu.X[reg("a4")]) != -2 || cpu.X[reg("a5")] != 0xFE {
		t.Fatal("lb/lbu wrong")
	}
	if cpu.X[reg("a6")] != 0xFE {
		t.Fatal("sb wrote more than a byte")
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	cpu := run(t, `
		li   a0, 0          # sum
		li   t0, 1          # i
		li   t1, 10
	loop:
		add  a0, a0, t0
		addi t0, t0, 1
		bge  t1, t0, loop
		ebreak
	`)
	if cpu.X[reg("a0")] != 55 {
		t.Fatalf("sum = %d, want 55", cpu.X[reg("a0")])
	}
}

func TestFibonacciProgram(t *testing.T) {
	cpu := run(t, `
		li   a0, 0
		li   a1, 1
		li   t0, 10
	fib:
		add  t1, a0, a1
		mv   a0, a1
		mv   a1, t1
		addi t0, t0, -1
		bne  t0, zero, fib
		ebreak
	`)
	if cpu.X[reg("a0")] != 55 { // fib(10)
		t.Fatalf("fib = %d, want 55", cpu.X[reg("a0")])
	}
}

func TestCallRet(t *testing.T) {
	cpu := run(t, `
		li   a0, 5
		call double
		call double
		ebreak
	double:
		add  a0, a0, a0
		ret
	`)
	if cpu.X[reg("a0")] != 20 {
		t.Fatalf("a0 = %d, want 20", cpu.X[reg("a0")])
	}
}

func TestJalJalr(t *testing.T) {
	cpu := run(t, `
		jal  s0, target
		ebreak              # skipped
	target:
		li   a0, 1
		ebreak
	`)
	if cpu.X[reg("a0")] != 1 || cpu.X[reg("s0")] != 4 {
		t.Fatalf("jal: a0=%d ra'=%#x", cpu.X[reg("a0")], cpu.X[reg("s0")])
	}
}

func TestLuiAuipcLiLarge(t *testing.T) {
	cpu := run(t, `
		li   a0, 0x12345678
		li   a1, -1000000
		lui  a2, 0xFFFFF
		ebreak
	`)
	if cpu.X[reg("a0")] != 0x12345678 {
		t.Fatalf("large li = %#x", cpu.X[reg("a0")])
	}
	if int32(cpu.X[reg("a1")]) != -1000000 {
		t.Fatalf("negative li = %d", int32(cpu.X[reg("a1")]))
	}
	if cpu.X[reg("a2")] != 0xFFFFF000 {
		t.Fatalf("lui = %#x", cpu.X[reg("a2")])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	cpu := run(t, `
		li   zero, 42
		addi x0, x0, 7
		mv   a0, zero
		ebreak
	`)
	if cpu.X[0] != 0 || cpu.X[reg("a0")] != 0 {
		t.Fatal("x0 was written")
	}
}

func TestRdcycleCounts(t *testing.T) {
	cpu := run(t, `
		rdcycle a0
		nop
		nop
		nop
		rdcycle a1
		ebreak
	`)
	d := cpu.X[reg("a1")] - cpu.X[reg("a0")]
	if d < 3 || d > 8 {
		t.Fatalf("3 nops cost %d cycles", d)
	}
}

func TestCSRReadWrite(t *testing.T) {
	cpu := run(t, `
		li    a0, 0xAB
		csrrw a1, 0x340, a0  # old (0) -> a1, write 0xAB
		csrrs a2, 0x340, zero # read back
		li    a3, 0x0F
		csrrc a4, 0x340, a3  # clear low bits
		csrrs a5, 0x340, zero
		ebreak
	`)
	if cpu.X[reg("a1")] != 0 || cpu.X[reg("a2")] != 0xAB {
		t.Fatal("csrrw/csrrs wrong")
	}
	if cpu.X[reg("a4")] != 0xAB || cpu.X[reg("a5")] != 0xA0 {
		t.Fatalf("csrrc wrong: %#x %#x", cpu.X[reg("a4")], cpu.X[reg("a5")])
	}
}

func TestInstretCounter(t *testing.T) {
	cpu := run(t, `
		nop
		nop
		ebreak
	`)
	if cpu.Retired != 3 {
		t.Fatalf("retired = %d", cpu.Retired)
	}
}

func TestTrapOnUnknownOpcode(t *testing.T) {
	cpu, ram := makeCPU(t, "nop")
	ram.Data[0] = 0x7F // not a valid opcode
	err := cpu.Step()
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("expected trap, got %v", err)
	}
}

func TestTrapOnBadAddress(t *testing.T) {
	cpu, _ := makeCPU(t, `
		li  t0, 0x7FFFFFF0
		lw  a0, 0(t0)
	`)
	var trap *Trap
	for i := 0; i < 10; i++ {
		if err := cpu.Step(); errors.As(err, &trap) {
			return
		}
	}
	t.Fatal("unmapped load did not trap")
}

func TestCustomInstructionDispatch(t *testing.T) {
	cpu, _ := makeCPU(t, `
		li   a0, 6
		li   a1, 7
		axop a0, a1
		ebreak
	`)
	var gotF3 uint32
	cpu.Custom = func(c *CPU, f3, f7, rs1, rs2 uint32) (uint32, int, error) {
		gotF3 = f3
		return rs1 * rs2, 5, nil
	}
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if gotF3 != CustomAxOp {
		t.Fatalf("funct3 = %d", gotF3)
	}
	// axop has rd=0 so the result is discarded, but cycles count.
	if cpu.Cycles < 7 {
		t.Fatalf("custom cycle cost not charged: %d", cpu.Cycles)
	}
}

func TestCustomWithoutHandlerTraps(t *testing.T) {
	cpu, _ := makeCPU(t, `axop a0, a1`)
	var trap *Trap
	if err := cpu.Step(); !errors.As(err, &trap) {
		t.Fatalf("expected trap, got %v", err)
	}
}

func TestHaltSemantics(t *testing.T) {
	cpu, _ := makeCPU(t, "ebreak")
	if err := cpu.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("first step: %v", err)
	}
	if err := cpu.Step(); !errors.Is(err, ErrHalted) {
		t.Fatal("halted CPU stepped again")
	}
	if err := cpu.Run(10); err != nil {
		t.Fatal("Run on halted CPU should return nil")
	}
}

func TestRunBudgetExceeded(t *testing.T) {
	cpu, _ := makeCPU(t, `
	spin:
		j spin
	`)
	if err := cpu.Run(100); err == nil {
		t.Fatal("infinite loop did not exhaust budget")
	}
}

func TestReset(t *testing.T) {
	cpu := run(t, `
		li a0, 9
		ebreak
	`)
	cpu.Reset(0)
	if cpu.X[reg("a0")] != 0 || cpu.Cycles != 0 || cpu.Halted {
		t.Fatal("reset incomplete")
	}
}

func TestDecoderNeverPanics(t *testing.T) {
	// Random instruction words must trap or execute, never panic.
	bus := &SystemBus{}
	ram := NewRAM(1 << 12)
	if err := bus.Map(0, 1<<12, ram); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(bus)
	cpu.Custom = func(c *CPU, f3, f7, rs1, rs2 uint32) (uint32, int, error) { return 0, 1, nil }
	rng := uint64(12345)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		word := uint32(rng >> 32)
		ram.Data[0] = byte(word)
		ram.Data[1] = byte(word >> 8)
		ram.Data[2] = byte(word >> 16)
		ram.Data[3] = byte(word >> 24)
		cpu.Reset(0)
		_ = cpu.Step() // any error is fine; panics are not
	}
}

func TestDisassembleNeverPanics(t *testing.T) {
	rng := uint64(999)
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if Disassemble(uint32(rng>>32)) == "" {
			t.Fatal("empty disassembly")
		}
	}
}

func TestCycleCSRs(t *testing.T) {
	cpu := run(t, `
		nop
		nop
		csrrs a0, 0xC00, zero   # cycle
		csrrs a1, 0xC80, zero   # cycleh
		csrrs a2, 0xC02, zero   # instret
		ebreak
	`)
	if cpu.X[reg("a0")] == 0 {
		t.Fatal("cycle CSR reads zero after work")
	}
	if cpu.X[reg("a1")] != 0 {
		t.Fatal("cycleh should be zero this early")
	}
	// Four instructions retired before the instret read executes.
	if cpu.X[reg("a2")] != 4 {
		t.Fatalf("instret = %d, want 4", cpu.X[reg("a2")])
	}
}

func TestDivuRemuByZero(t *testing.T) {
	cpu := run(t, `
		li   a0, 7
		divu a1, a0, zero   # -> all ones
		remu a2, a0, zero   # -> a0
		ebreak
	`)
	if cpu.X[reg("a1")] != 0xFFFFFFFF || cpu.X[reg("a2")] != 7 {
		t.Fatal("unsigned divide-by-zero semantics wrong")
	}
}

func TestCSRRWI(t *testing.T) {
	cpu := run(t, `
		csrrwi a0, 0x340, 21
		csrrs  a1, 0x340, zero
		ebreak
	`)
	if cpu.X[reg("a0")] != 0 || cpu.X[reg("a1")] != 21 {
		t.Fatalf("csrrwi: old=%d new=%d", cpu.X[reg("a0")], cpu.X[reg("a1")])
	}
}
