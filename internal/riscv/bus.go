package riscv

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Device is a bus-attached peripheral occupying an address window.
type Device interface {
	// Read returns a value of size bytes at offset within the window plus
	// wait cycles.
	Read(offset uint32, size int) (uint32, int, error)
	// Write stores size bytes at offset, returning wait cycles.
	Write(offset uint32, size int, val uint32) (int, error)
}

// RAM is zero-wait tightly-coupled memory (the E906's I/D-MEM).
type RAM struct{ Data []byte }

// NewRAM allocates n bytes of TCM.
func NewRAM(n int) *RAM { return &RAM{Data: make([]byte, n)} }

// Read implements Device.
func (r *RAM) Read(off uint32, size int) (uint32, int, error) {
	if int(off)+size > len(r.Data) {
		return 0, 0, fmt.Errorf("ram: read %d@%#x out of %d", size, off, len(r.Data))
	}
	switch size {
	case 1:
		return uint32(r.Data[off]), 0, nil
	case 2:
		return uint32(binary.LittleEndian.Uint16(r.Data[off:])), 0, nil
	case 4:
		return binary.LittleEndian.Uint32(r.Data[off:]), 0, nil
	}
	return 0, 0, fmt.Errorf("ram: bad access size %d", size)
}

// Write implements Device.
func (r *RAM) Write(off uint32, size int, val uint32) (int, error) {
	if int(off)+size > len(r.Data) {
		return 0, fmt.Errorf("ram: write %d@%#x out of %d", size, off, len(r.Data))
	}
	switch size {
	case 1:
		r.Data[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(r.Data[off:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(r.Data[off:], val)
	default:
		return 0, fmt.Errorf("ram: bad access size %d", size)
	}
	return 0, nil
}

type mapping struct {
	base, size uint32
	dev        Device
}

// SystemBus routes CPU accesses to mapped devices (AXI-style interconnect).
type SystemBus struct{ maps []mapping }

// Map attaches dev at [base, base+size). Overlaps are rejected.
func (b *SystemBus) Map(base, size uint32, dev Device) error {
	if size == 0 {
		return fmt.Errorf("bus: empty window at %#x", base)
	}
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("bus: window %#x+%#x overlaps %#x+%#x", base, size, m.base, m.size)
		}
	}
	b.maps = append(b.maps, mapping{base, size, dev})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
	return nil
}

func (b *SystemBus) find(addr uint32, size int) (*mapping, error) {
	for i := range b.maps {
		m := &b.maps[i]
		if addr >= m.base && addr+uint32(size) <= m.base+m.size {
			return m, nil
		}
	}
	return nil, fmt.Errorf("bus: no device at %#x", addr)
}

// Load implements Bus.
func (b *SystemBus) Load(addr uint32, size int) (uint32, int, error) {
	m, err := b.find(addr, size)
	if err != nil {
		return 0, 0, err
	}
	return m.dev.Read(addr-m.base, size)
}

// Store implements Bus.
func (b *SystemBus) Store(addr uint32, size int, val uint32) (int, error) {
	m, err := b.find(addr, size)
	if err != nil {
		return 0, err
	}
	return m.dev.Write(addr-m.base, size, val)
}

// MMIOWrapper adds fixed wait-state latency to a device, modeling a
// loosely-coupled peripheral reached across the SoC interconnect (the
// ~100-cycle MMIO cost in Table 7).
type MMIOWrapper struct {
	Inner Device
	Wait  int
}

// Read implements Device.
func (w MMIOWrapper) Read(off uint32, size int) (uint32, int, error) {
	v, extra, err := w.Inner.Read(off, size)
	return v, extra + w.Wait, err
}

// Write implements Device.
func (w MMIOWrapper) Write(off uint32, size int, val uint32) (int, error) {
	extra, err := w.Inner.Write(off, size, val)
	return extra + w.Wait, err
}
