package riscv

import (
	"fmt"
	"strings"
)

// Disassemble renders one instruction word in the assembler's own syntax,
// so listings from axe-asm are readable and (for the supported subset)
// re-assemblable. Unknown encodings render as ".word 0x...".
func Disassemble(instr uint32) string {
	op := instr & 0x7f
	rd := (instr >> 7) & 0x1f
	funct3 := (instr >> 12) & 0x7
	rs1 := (instr >> 15) & 0x1f
	rs2 := (instr >> 20) & 0x1f
	funct7 := instr >> 25
	reg := regName
	unknown := fmt.Sprintf(".word 0x%08x", instr)

	switch op {
	case 0x37:
		return fmt.Sprintf("lui %s, 0x%x", reg(rd), instr>>12)
	case 0x17:
		return fmt.Sprintf("auipc %s, 0x%x", reg(rd), instr>>12)
	case 0x6f:
		imm := (instr>>31)<<20 | ((instr >> 12 & 0xff) << 12) | ((instr >> 20 & 1) << 11) | ((instr >> 21 & 0x3ff) << 1)
		off := int32(signExtend(imm, 21))
		if rd == 0 {
			return fmt.Sprintf("j %+d", off)
		}
		return fmt.Sprintf("jal %s, %+d", reg(rd), off)
	case 0x67:
		if funct3 != 0 {
			return unknown
		}
		imm := int32(signExtend(instr>>20, 12))
		if rd == 0 && rs1 == 1 && imm == 0 {
			return "ret"
		}
		return fmt.Sprintf("jalr %s, %d(%s)", reg(rd), imm, reg(rs1))
	case 0x63:
		names := map[uint32]string{0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
		name, ok := names[funct3]
		if !ok {
			return unknown
		}
		imm := (instr>>31)<<12 | ((instr >> 7 & 1) << 11) | ((instr >> 25 & 0x3f) << 5) | ((instr >> 8 & 0xf) << 1)
		return fmt.Sprintf("%s %s, %s, %+d", name, reg(rs1), reg(rs2), int32(signExtend(imm, 13)))
	case 0x03:
		names := map[uint32]string{0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
		name, ok := names[funct3]
		if !ok {
			return unknown
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, reg(rd), int32(signExtend(instr>>20, 12)), reg(rs1))
	case 0x23:
		names := map[uint32]string{0: "sb", 1: "sh", 2: "sw"}
		name, ok := names[funct3]
		if !ok {
			return unknown
		}
		imm := int32(signExtend((funct7<<5)|rd, 12))
		return fmt.Sprintf("%s %s, %d(%s)", name, reg(rs2), imm, reg(rs1))
	case 0x13:
		imm := int32(signExtend(instr>>20, 12))
		switch funct3 {
		case 0:
			if instr == 0x00000013 {
				return "nop"
			}
			if rs1 == 0 {
				return fmt.Sprintf("li %s, %d", reg(rd), imm)
			}
			if imm == 0 {
				return fmt.Sprintf("mv %s, %s", reg(rd), reg(rs1))
			}
			return fmt.Sprintf("addi %s, %s, %d", reg(rd), reg(rs1), imm)
		case 2:
			return fmt.Sprintf("slti %s, %s, %d", reg(rd), reg(rs1), imm)
		case 3:
			return fmt.Sprintf("sltiu %s, %s, %d", reg(rd), reg(rs1), imm)
		case 4:
			return fmt.Sprintf("xori %s, %s, %d", reg(rd), reg(rs1), imm)
		case 6:
			return fmt.Sprintf("ori %s, %s, %d", reg(rd), reg(rs1), imm)
		case 7:
			return fmt.Sprintf("andi %s, %s, %d", reg(rd), reg(rs1), imm)
		case 1:
			return fmt.Sprintf("slli %s, %s, %d", reg(rd), reg(rs1), rs2)
		case 5:
			if funct7&0x20 != 0 {
				return fmt.Sprintf("srai %s, %s, %d", reg(rd), reg(rs1), rs2)
			}
			return fmt.Sprintf("srli %s, %s, %d", reg(rd), reg(rs1), rs2)
		}
		return unknown
	case 0x33:
		var name string
		if funct7 == 1 {
			names := [8]string{"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"}
			name = names[funct3]
		} else {
			switch funct3 {
			case 0:
				name = "add"
				if funct7&0x20 != 0 {
					name = "sub"
				}
			case 1:
				name = "sll"
			case 2:
				name = "slt"
			case 3:
				name = "sltu"
			case 4:
				name = "xor"
			case 5:
				name = "srl"
				if funct7&0x20 != 0 {
					name = "sra"
				}
			case 6:
				name = "or"
			case 7:
				name = "and"
			}
		}
		if name == "" {
			return unknown
		}
		return fmt.Sprintf("%s %s, %s, %s", name, reg(rd), reg(rs1), reg(rs2))
	case 0x73:
		csr := instr >> 20
		switch funct3 {
		case 0:
			if instr == 0x00100073 {
				return "ebreak"
			}
			if instr == 0x73 {
				return "ecall"
			}
			return unknown
		case 1:
			return fmt.Sprintf("csrrw %s, 0x%x, %s", reg(rd), csr, reg(rs1))
		case 2:
			if rs1 == 0 && csr == CSRCycle {
				return fmt.Sprintf("rdcycle %s", reg(rd))
			}
			return fmt.Sprintf("csrrs %s, 0x%x, %s", reg(rd), csr, reg(rs1))
		case 3:
			return fmt.Sprintf("csrrc %s, 0x%x, %s", reg(rd), csr, reg(rs1))
		case 5:
			return fmt.Sprintf("csrrwi %s, 0x%x, %d", reg(rd), csr, rs1)
		}
		return unknown
	case 0x0b:
		switch funct3 {
		case CustomQPush:
			return fmt.Sprintf("qpush %d, %s, %s", funct7, reg(rs1), reg(rs2))
		case CustomQPop:
			return fmt.Sprintf("qpop %s, %d", reg(rd), funct7)
		case CustomQStat:
			return fmt.Sprintf("qstat %s, %d", reg(rd), funct7)
		case CustomAxOp:
			return fmt.Sprintf("axop %s, %s", reg(rs1), reg(rs2))
		}
		return unknown
	case 0x0f:
		return "fence"
	}
	return unknown
}

// regName returns the ABI name for a register number.
func regName(n uint32) string {
	names := [32]string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	if n < 32 {
		return names[n]
	}
	return fmt.Sprintf("x%d", n)
}

// DisassembleProgram renders words as an address-annotated listing.
func DisassembleProgram(words []uint32, base uint32) string {
	var sb strings.Builder
	for i, w := range words {
		fmt.Fprintf(&sb, "%08x: %08x  %s\n", base+uint32(i*4), w, Disassemble(w))
	}
	return sb.String()
}
