package workload

import (
	"testing"

	"lsdgnn/internal/graph"
)

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 6 {
		t.Fatalf("dataset count = %d, want 6", len(ds))
	}
	wantOrder := []string{"ss", "ls", "sl", "ml", "ll", "syn"}
	for i, d := range ds {
		if d.Name != wantOrder[i] {
			t.Fatalf("dataset %d = %s, want %s", i, d.Name, wantOrder[i])
		}
		if d.Nodes <= 0 || d.Edges <= 0 || d.AttrLen <= 0 || d.SimNodes <= 0 {
			t.Fatalf("dataset %s has non-positive fields", d.Name)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("ml")
	if err != nil || d.Name != "ml" {
		t.Fatalf("lookup ml: %v %v", d, err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTable2Statistics(t *testing.T) {
	// The registry must carry Table 2's published numbers.
	cases := map[string]struct {
		nodes, edges int64
		attr         int
	}{
		"ss":  {65_200_000, 592_000_000, 72},
		"ls":  {1_900_000_000, 5_200_000_000, 84},
		"sl":  {67_300_000, 601_000_000, 128},
		"ml":  {207_000_000, 5_700_000_000, 136},
		"ll":  {702_000_000, 12_300_000_000, 152},
		"syn": {5_900_000_000, 105_000_000_000, 152},
	}
	for name, want := range cases {
		d, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Nodes != want.nodes || d.Edges != want.edges || d.AttrLen != want.attr {
			t.Errorf("%s = %+v, want %+v", name, d, want)
		}
	}
}

func TestFootprintAndServers(t *testing.T) {
	d, _ := DatasetByName("ss")
	want := d.Nodes*int64(d.AttrLen)*4 + d.Edges*8 + (d.Nodes+1)*8
	if d.FootprintBytes() != want {
		t.Fatalf("footprint = %d, want %d", d.FootprintBytes(), want)
	}
	if d.MinServers(want) != 1 {
		t.Fatal("exact-fit should need 1 server")
	}
	if d.MinServers(want-1) != 2 {
		t.Fatal("one byte short should need 2 servers")
	}
	if d.MinServers(want*10) != 1 {
		t.Fatal("min servers must be at least 1")
	}
	// syn (the largest) needs many 512 GB servers.
	syn, _ := DatasetByName("syn")
	if syn.MinServers(512e9) < 5 {
		t.Fatalf("syn servers = %d, expected several", syn.MinServers(512e9))
	}
}

func TestMinServersValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive capacity did not panic")
		}
	}()
	Datasets()[0].MinServers(0)
}

func TestBuildScaled(t *testing.T) {
	d, _ := DatasetByName("ss")
	g := d.Build(1)
	if g.NumNodes() != d.SimNodes {
		t.Fatalf("sim nodes = %d, want %d", g.NumNodes(), d.SimNodes)
	}
	if g.AttrLen() != d.AttrLen {
		t.Fatalf("attr len = %d, want %d", g.AttrLen(), d.AttrLen)
	}
	// Average degree preserved within 5%.
	if got, want := g.AvgDegree(), d.AvgDegree(); got < want*0.95 || got > want*1.05 {
		t.Fatalf("avg degree %v, want ~%v", got, want)
	}
}

func TestSamplingSpecMath(t *testing.T) {
	s := DefaultSampling()
	if s.BatchSize != 512 || s.NegativeRate != 10 || len(s.Fanouts) != 2 {
		t.Fatalf("default spec = %+v", s)
	}
	if got := s.SampledNodesPerRoot(); got != 110 {
		t.Fatalf("sampled/root = %d, want 110 (10 + 100)", got)
	}
	if got := s.AttrFetchesPerRoot(); got != 121 {
		t.Fatalf("fetches/root = %d, want 121 (1 + 110 + 10)", got)
	}
	three := SamplingSpec{BatchSize: 1, Fanouts: []int{2, 3, 4}, NegativeRate: 1}
	if got := three.SampledNodesPerRoot(); got != 2+6+24 {
		t.Fatalf("3-hop sampled/root = %d", got)
	}
}

func TestDefaultApp(t *testing.T) {
	app := DefaultApp()
	if app.Dataset.Name != "ls" {
		t.Fatalf("app dataset = %s, want ls (Table 3)", app.Dataset.Name)
	}
	if app.EmbeddingDim != 128 || app.HiddenDim != 128 {
		t.Fatalf("dims = %d/%d, want 128/128", app.EmbeddingDim, app.HiddenDim)
	}
	if app.GNNModel != "graphSAGE-max" {
		t.Fatalf("model = %s", app.GNNModel)
	}
}

func TestBatchSource(t *testing.T) {
	src := NewBatchSource(1000, 64, 5)
	a := src.Next()
	if len(a) != 64 {
		t.Fatalf("batch size = %d", len(a))
	}
	for _, v := range a {
		if int64(v) >= 1000 {
			t.Fatalf("root %d out of range", v)
		}
	}
	b := src.Next()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("consecutive batches identical")
	}
	// Determinism across sources with the same seed.
	c := NewBatchSource(1000, 64, 5).Next()
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same-seed sources differ")
		}
	}
}

func TestBatchSourceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid batch source did not panic")
		}
	}()
	NewBatchSource(0, 10, 1)
}

func TestBatchSourceCoverage(t *testing.T) {
	// Roots should spread across the ID space, not cluster.
	src := NewBatchSource(100, 1000, 7)
	seen := map[graph.NodeID]bool{}
	for _, v := range src.Next() {
		seen[v] = true
	}
	if len(seen) < 90 {
		t.Fatalf("only %d distinct roots of 100", len(seen))
	}
}
