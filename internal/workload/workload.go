// Package workload defines the benchmark configurations from the paper's
// evaluation: the six graph datasets of Table 2, the end-to-end application
// of Table 3, and mini-batch root generation. Full-scale statistics drive
// the analytical models; each dataset also carries a scaled-down simulation
// size so functional runs fit in test memory while preserving degree and
// attribute statistics.
package workload

import (
	"fmt"
	"math/rand"

	"lsdgnn/internal/graph"
)

// Dataset describes one of the paper's graph datasets (Table 2).
type Dataset struct {
	Name string
	// Full-scale statistics (drive analytical footprint/traffic models).
	Nodes   int64
	Edges   int64
	AttrLen int
	// SimNodes is the scaled node count used for functional simulation;
	// average degree and attribute length are preserved.
	SimNodes int64
	// PowerLaw marks skewed (e-commerce-like) degree distributions.
	PowerLaw bool
}

// AvgDegree returns edges per node at full scale.
func (d Dataset) AvgDegree() float64 { return float64(d.Edges) / float64(d.Nodes) }

// FootprintBytes returns the full-scale in-memory footprint: 4-byte floats
// for attributes plus 8-byte edge entries and 8-byte CSR offsets.
func (d Dataset) FootprintBytes() int64 {
	return d.Nodes*int64(d.AttrLen)*4 + d.Edges*8 + (d.Nodes+1)*8
}

// MinServers returns the minimal number of storage servers with
// bytesPerServer memory each needed to hold the dataset.
func (d Dataset) MinServers(bytesPerServer int64) int {
	if bytesPerServer <= 0 {
		panic("workload: bytesPerServer must be positive")
	}
	fp := d.FootprintBytes()
	n := fp / bytesPerServer
	if fp%bytesPerServer != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Build generates the scaled-down functional graph for this dataset.
func (d Dataset) Build(seed int64) *graph.Graph {
	return graph.Generate(graph.GenConfig{
		NumNodes:  d.SimNodes,
		AvgDegree: d.AvgDegree(),
		AttrLen:   d.AttrLen,
		Seed:      seed,
		PowerLaw:  d.PowerLaw,
	})
}

// Datasets returns the six Table 2 datasets in paper order:
// ss, ls, sl, ml, ll, syn (named by node-count scale then attribute scale).
func Datasets() []Dataset {
	return []Dataset{
		{Name: "ss", Nodes: 65_200_000, Edges: 592_000_000, AttrLen: 72, SimNodes: 20_000, PowerLaw: true},
		{Name: "ls", Nodes: 1_900_000_000, Edges: 5_200_000_000, AttrLen: 84, SimNodes: 40_000, PowerLaw: true},
		{Name: "sl", Nodes: 67_300_000, Edges: 601_000_000, AttrLen: 128, SimNodes: 20_000, PowerLaw: true},
		{Name: "ml", Nodes: 207_000_000, Edges: 5_700_000_000, AttrLen: 136, SimNodes: 30_000, PowerLaw: true},
		{Name: "ll", Nodes: 702_000_000, Edges: 12_300_000_000, AttrLen: 152, SimNodes: 30_000, PowerLaw: true},
		{Name: "syn", Nodes: 5_900_000_000, Edges: 105_000_000_000, AttrLen: 152, SimNodes: 40_000, PowerLaw: true},
	}
}

// DatasetByName looks a dataset up by its Table 2 name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// SamplingSpec is the sampling application configuration shared by all
// Table 2 rows: 2-hop random sampling, mini-batch 512, fanout 10/10,
// negative sample rate 10.
type SamplingSpec struct {
	BatchSize    int
	Fanouts      []int // neighbors sampled per node at each hop
	NegativeRate int
	// FetchAttrs controls whether sampled nodes' attributes are fetched
	// (they are, in the paper's workload).
	FetchAttrs bool
}

// DefaultSampling returns the Table 2 sampling model.
func DefaultSampling() SamplingSpec {
	return SamplingSpec{BatchSize: 512, Fanouts: []int{10, 10}, NegativeRate: 10, FetchAttrs: true}
}

// SampledNodesPerRoot returns how many nodes one root expands to across all
// hops (excluding the root itself): f1 + f1*f2 + ...
func (s SamplingSpec) SampledNodesPerRoot() int {
	total, layer := 0, 1
	for _, f := range s.Fanouts {
		layer *= f
		total += layer
	}
	return total
}

// AttrFetchesPerRoot counts attribute vectors fetched per root, including
// the root and negative samples.
func (s SamplingSpec) AttrFetchesPerRoot() int {
	return 1 + s.SampledNodesPerRoot() + s.NegativeRate
}

// App is the end-to-end application of Table 3: ls dataset, 128-wide
// embedding, graphSAGE-max GNN and a DSSM 128-128 end model.
type App struct {
	Dataset      Dataset
	Sampling     SamplingSpec
	EmbeddingDim int
	HiddenDim    int
	GNNModel     string
	EndModel     string
}

// DefaultApp returns the Table 3 application.
func DefaultApp() App {
	ls, _ := DatasetByName("ls")
	return App{
		Dataset:      ls,
		Sampling:     DefaultSampling(),
		EmbeddingDim: 128,
		HiddenDim:    128,
		GNNModel:     "graphSAGE-max",
		EndModel:     "DSSM-128-128",
	}
}

// BatchSource deterministically generates mini-batches of root node IDs.
type BatchSource struct {
	rng      *rand.Rand
	numNodes int64
	batch    int
}

// NewBatchSource creates a root generator over [0, numNodes).
func NewBatchSource(numNodes int64, batchSize int, seed int64) *BatchSource {
	if numNodes <= 0 || batchSize <= 0 {
		panic("workload: numNodes and batchSize must be positive")
	}
	return &BatchSource{rng: rand.New(rand.NewSource(seed)), numNodes: numNodes, batch: batchSize}
}

// Next fills and returns a batch of uniformly random root IDs.
func (b *BatchSource) Next() []graph.NodeID {
	roots := make([]graph.NodeID, b.batch)
	for i := range roots {
		roots[i] = graph.NodeID(b.rng.Int63n(b.numNodes))
	}
	return roots
}
