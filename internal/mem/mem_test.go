package mem

import (
	"testing"

	"lsdgnn/internal/graph"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, 14}, {1 << 21, 15}, {1<<21 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestScratchGetPutBalance(t *testing.T) {
	before := Outstanding()
	a := IDs.Get(100)
	if len(a) != 100 {
		t.Fatalf("Get(100) returned len %d", len(a))
	}
	if cap(a) != 128 {
		t.Fatalf("Get(100) returned cap %d, want class capacity 128", cap(a))
	}
	if got := Outstanding(); got != before+1 {
		t.Fatalf("outstanding = %d after Get, want %d", got, before+1)
	}
	IDs.Put(a)
	if got := Outstanding(); got != before {
		t.Fatalf("outstanding = %d after Put, want %d", got, before)
	}
}

func TestScratchReuseAndZeroed(t *testing.T) {
	a := Floats.Get(64)
	for i := range a {
		a[i] = 3.5
	}
	Floats.Put(a)
	// The pool may or may not hand the same buffer back (sync.Pool gives no
	// guarantee), but GetZeroed must be all-zero either way.
	b := Floats.GetZeroed(64)
	defer Floats.Put(b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("GetZeroed buffer dirty at %d: %v", i, v)
		}
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	before := counters.oversize.Load()
	s := IDs.Get(1<<21 + 1)
	if len(s) != 1<<21+1 {
		t.Fatalf("oversize Get returned len %d", len(s))
	}
	if got := counters.oversize.Load(); got != before+1 {
		t.Fatalf("oversize counter = %d, want %d", got, before+1)
	}
	IDs.Put(s) // dropped to GC, must not panic or underflow gauges
}

func TestPutDropsWrongCapacity(t *testing.T) {
	// A buffer that never came from the pool (or was grown by append away
	// from its class capacity) must be dropped, not parked on a class whose
	// capacity it no longer matches.
	if IDs.put(make([]graph.NodeID, 100)) {
		t.Fatal("put accepted a cap-100 buffer")
	}
	if !IDs.put(make([]graph.NodeID, 128)) {
		t.Fatal("put rejected an exact class-capacity buffer")
	}
}

func TestListsClearOnPut(t *testing.T) {
	l := Lists.Get(64)
	for i := range l {
		l[i] = []graph.NodeID{graph.NodeID(i)}
	}
	Lists.Put(l)
	// Drain until we get a pooled buffer back; every pooled hit must be
	// all-nil (clearOnPut), and fresh allocations are zeroed anyway.
	for i := 0; i < 4; i++ {
		got := Lists.Get(64)
		for j, e := range got {
			if e != nil {
				t.Fatalf("pooled Lists buffer leaked entry at %d: %v", j, e)
			}
		}
		Lists.Put(got)
	}
}

func TestRegionLifecycle(t *testing.T) {
	liveBefore := LiveRegions()
	rg := NewRegion()
	if got := LiveRegions(); got != liveBefore+1 {
		t.Fatalf("LiveRegions = %d after NewRegion, want %d", got, liveBefore+1)
	}
	ids := rg.IDs(200)
	fl := rg.Floats(100, true)
	ls := rg.Lists(10)
	if len(ids) != 200 || len(fl) != 100 || len(ls) != 10 {
		t.Fatalf("region handed out wrong lengths: %d %d %d", len(ids), len(fl), len(ls))
	}
	for i, v := range fl {
		if v != 0 {
			t.Fatalf("zeroed region floats dirty at %d: %v", i, v)
		}
	}
	recycledBefore := counters.recycled.Load()
	rg.Release()
	if got := LiveRegions(); got != liveBefore {
		t.Fatalf("LiveRegions = %d after Release, want %d", got, liveBefore)
	}
	if got := counters.recycled.Load(); got != recycledBefore+3 {
		t.Fatalf("recycled = %d after Release, want %d", got, recycledBefore+3)
	}
	if len(rg.ids) != 0 || len(rg.floats) != 0 || len(rg.lists) != 0 {
		t.Fatal("released region still tracks buffers")
	}
	for _, s := range rg.ids[:cap(rg.ids)] {
		if s != nil {
			t.Fatal("released region pins a recycled ID buffer")
		}
	}
}

func TestOwnedDoesNotCountAsScratch(t *testing.T) {
	before := Outstanding()
	s := IDs.GetOwned(64, false)
	if got := Outstanding(); got != before {
		t.Fatalf("GetOwned moved the scratch gauge: %d -> %d", before, got)
	}
	IDs.Recycle(s)
	if got := Outstanding(); got != before {
		t.Fatalf("Recycle moved the scratch gauge: %d -> %d", before, got)
	}
}

func TestSnapshotSchema(t *testing.T) {
	snap := Snapshot()
	if snap.Layer != "mem" {
		t.Fatalf("layer = %q, want mem", snap.Layer)
	}
	for _, name := range []string{
		"pool_hits", "pool_misses", "pool_puts", "pool_oversize",
		"scratch_outstanding", "owned_handoffs", "owned_recycled",
		"regions_total", "regions_live",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
}
