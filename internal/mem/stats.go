package mem

import "lsdgnn/internal/stats"

// Source returns the process-wide "mem" stats layer: pool hit/miss/put
// counters, the scratch outstanding gauge, and the owned-buffer
// handoff/recycle pair. Servers register it at startup so every
// lsdgnn_mem_* series exists at zero from the first scrape, exactly like
// the resilience and pipeline schemas.
func Source() stats.Source {
	return stats.Func(Snapshot)
}

// Snapshot reports the current "mem" layer snapshot.
func Snapshot() stats.Snapshot {
	return stats.Snapshot{Layer: "mem", Metrics: []stats.Metric{
		{Name: "pool_hits", Value: float64(counters.hits.Load()), Unit: "req"},
		{Name: "pool_misses", Value: float64(counters.misses.Load()), Unit: "req"},
		{Name: "pool_puts", Value: float64(counters.puts.Load()), Unit: "req"},
		{Name: "pool_oversize", Value: float64(counters.oversize.Load()), Unit: "req"},
		{Name: "scratch_outstanding", Value: float64(counters.outstanding.Load()), Unit: "req"},
		{Name: "owned_handoffs", Value: float64(counters.handoffs.Load()), Unit: "req"},
		{Name: "owned_recycled", Value: float64(counters.recycled.Load()), Unit: "req"},
		{Name: "regions_total", Value: float64(counters.regions.Load()), Unit: "req"},
		{Name: "regions_live", Value: float64(counters.regionLive.Load()), Unit: "req"},
	}}
}
