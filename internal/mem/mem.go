// Package mem is the hot path's buffer discipline: size-classed,
// sync.Pool-backed free lists for the slice shapes the sample → pipeline
// → pack → codec chain churns (node-ID vectors, attribute floats, wire
// bytes, adjacency list-of-lists), plus a per-batch region allocator with
// an explicit Release. It is the software stand-in for the paper's
// on-chip buffering (§4.2): the AxE engine never allocates per request —
// every frontier, sample buffer, and frame lives in preallocated BRAM —
// and this package gives the Go reproduction the same steady-state: after
// warm-up, a sampling batch touches only recycled memory.
//
// Ownership is explicit and two-tiered:
//
//   - Scratch (Get/Put) never escapes the subsystem that took it. Every
//     Get is balanced by a Put on all paths, so the outstanding gauge
//     returns to zero whenever the hot path is idle — the leak-check
//     TestMains in the sampler, pipeline, cluster and mof suites assert
//     exactly that.
//   - Owned buffers (Region) back results handed to callers. The caller
//     recycles them by releasing the region (sampler.Result.Release);
//     a caller that never releases simply donates the buffers to the GC —
//     correctness never depends on Release, only steady-state allocation
//     rate does.
//
// Nothing in this package zeroes on Put; buffers whose consumers rely on
// zero values (attribute vectors with degraded-store zero-fill semantics)
// must be taken through the *Zeroed variants.
package mem

import (
	"sync"
	"sync/atomic"

	"lsdgnn/internal/graph"
)

// Size classes are powers of two in elements, 64 .. 2Mi. Below the
// smallest class a request still gets the 64-element buffer; above the
// largest the request falls through to the allocator (counted as
// oversize) — a frontier that big is workload misconfiguration, not a
// pooling problem.
const (
	minClassBits = 6
	maxClassBits = 21
	numClasses   = maxClassBits - minClassBits + 1
)

// classFor returns the free-list index whose capacity holds n elements,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for (1 << (minClassBits + c)) < n {
		c++
	}
	return c
}

// item boxes a slice header for the free lists. sync.Pool traffics in
// interfaces, and a bare []T crossing that boundary re-allocates its
// header on every Put; a *item crosses as a pointer, allocation-free, and
// the boxes themselves cycle through a spare list so the steady state
// allocates neither buffers nor headers.
type item[T any] struct{ s []T }

// Pool is one element type's set of size-classed free lists. The zero
// value is not usable; construct with NewPool. All methods are safe for
// concurrent use.
type Pool[T any] struct {
	classes [numClasses]sync.Pool
	// spare holds empty *item boxes between a Get (which strips the box
	// off a buffer) and the next Put (which needs one).
	spare sync.Pool
	// clearOnPut zeroes returned buffers up to capacity before they enter
	// the free list — required for pointer-carrying element types, where a
	// parked buffer must not pin its previous contents against the GC (or
	// leak them to the next Get).
	clearOnPut bool
}

// NewPool returns an empty pool. clearOnPut must be set for element types
// that carry pointers (slices, maps, pointers) so pooled buffers cannot
// retain or leak previous contents.
func NewPool[T any](clearOnPut bool) *Pool[T] {
	return &Pool[T]{clearOnPut: clearOnPut}
}

// get is the shared checkout: a length-n slice whose contents are
// arbitrary unless zero is set.
func (p *Pool[T]) get(n int, zero bool) []T {
	c := classFor(n)
	if c < 0 {
		counters.oversize.Add(1)
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		it := v.(*item[T])
		s := it.s[:n]
		it.s = nil
		p.spare.Put(it)
		counters.hits.Add(1)
		if zero {
			clear(s)
		}
		return s
	}
	counters.misses.Add(1)
	// A fresh class-sized buffer: zeroed by the allocator already.
	return make([]T, 1<<(minClassBits+c))[:n]
}

// put parks s back on its free list. Undersized or oversized buffers
// (grown by append, or never pool-allocated) are dropped to the GC rather
// than poisoning a class with the wrong capacity.
func (p *Pool[T]) put(s []T) bool {
	c := classFor(cap(s))
	if c < 0 || cap(s) != 1<<(minClassBits+c) {
		return false
	}
	if p.clearOnPut {
		full := s[:cap(s)]
		clear(full)
	}
	it, _ := p.spare.Get().(*item[T])
	if it == nil {
		it = new(item[T])
	}
	it.s = s[:cap(s)]
	p.classes[c].Put(it)
	return true
}

// Get checks out a length-n scratch buffer with arbitrary contents. Every
// Get must be balanced by a Put on all paths (defer it); scratch must not
// escape the caller.
func (p *Pool[T]) Get(n int) []T {
	counters.outstanding.Add(1)
	return p.get(n, false)
}

// GetZeroed is Get with the buffer zeroed, for consumers whose contract
// assumes make()-style zero fill.
func (p *Pool[T]) GetZeroed(n int) []T {
	counters.outstanding.Add(1)
	return p.get(n, true)
}

// Put returns a scratch buffer taken with Get/GetZeroed. The caller must
// not touch s afterwards.
func (p *Pool[T]) Put(s []T) {
	counters.outstanding.Add(-1)
	if p.put(s) {
		counters.puts.Add(1)
	}
}

// GetOwned checks out a buffer whose ownership leaves the library — a
// result segment handed to the caller. It is recycled only by an explicit
// Recycle (via Region.Release), so it does not count against the
// outstanding scratch gauge; the handoffs/recycled pair tracks it.
func (p *Pool[T]) GetOwned(n int, zero bool) []T {
	counters.handoffs.Add(1)
	return p.get(n, zero)
}

// Recycle returns an owned buffer to the free lists.
func (p *Pool[T]) Recycle(s []T) {
	counters.recycled.Add(1)
	p.put(s)
}

// The shared pools of the hot path's slice shapes. One set per process:
// the sampler's scratch and the packer's frames draw from the same
// classes, so a workload shift (bigger batches, wider fanout) rebalances
// capacity between layers for free.
var (
	// IDs pools node-ID vectors: frontiers, hop segments, fetch orders.
	IDs = NewPool[graph.NodeID](false)
	// Floats pools attribute vectors.
	Floats = NewPool[float32](false)
	// Bytes pools wire frames and codec staging.
	Bytes = NewPool[byte](false)
	// U64s pools codec lane staging.
	U64s = NewPool[uint64](false)
	// U32s pools degree/length vectors.
	U32s = NewPool[uint32](false)
	// Lists pools adjacency list-of-lists (cleared on put: entries alias
	// store-owned adjacency memory that must not be pinned or leaked).
	Lists = NewPool[[]graph.NodeID](true)
)

// counters is the process-wide "mem" stats layer state.
var counters struct {
	hits, misses, puts  atomic.Int64
	oversize            atomic.Int64
	outstanding         atomic.Int64
	handoffs, recycled  atomic.Int64
	regions, regionLive atomic.Int64
}

// Outstanding returns the scratch buffers currently checked out (Gets
// minus Puts). Idle hot paths hold zero; the per-suite leak checks assert
// it.
func Outstanding() int64 { return counters.outstanding.Load() }

// LiveRegions returns the regions created and not yet released.
func LiveRegions() int64 { return counters.regionLive.Load() }

// Region is a per-batch allocation context for owned buffers: everything
// taken through it is returned to the pools by one Release call. A Region
// is not safe for concurrent use; the buffers it hands out are ordinary
// slices with no further coupling. Release must be called at most once,
// and only when no taken buffer is referenced anymore.
type Region struct {
	ids    [][]graph.NodeID
	floats [][]float32
	lists  [][][]graph.NodeID
}

var regionPool = sync.Pool{New: func() any { return new(Region) }}

// NewRegion checks a region out of the region pool.
func NewRegion() *Region {
	counters.regions.Add(1)
	counters.regionLive.Add(1)
	return regionPool.Get().(*Region)
}

// IDs allocates a length-n node-ID buffer owned by the region.
func (r *Region) IDs(n int) []graph.NodeID {
	s := IDs.GetOwned(n, false)
	r.ids = append(r.ids, s)
	return s
}

// Floats allocates a length-n float buffer owned by the region; zero is
// the make()-equivalent fill for zero-on-degrade consumers.
func (r *Region) Floats(n int, zero bool) []float32 {
	s := Floats.GetOwned(n, zero)
	r.floats = append(r.floats, s)
	return s
}

// Lists allocates a length-n list-of-lists buffer owned by the region.
func (r *Region) Lists(n int) [][]graph.NodeID {
	s := Lists.GetOwned(n, true)
	r.lists = append(r.lists, s)
	return s
}

// Release returns every buffer the region handed out to the pools and
// parks the region for reuse. The caller must drop all references first.
func (r *Region) Release() {
	for _, s := range r.ids {
		IDs.Recycle(s)
	}
	for _, s := range r.floats {
		Floats.Recycle(s)
	}
	for _, s := range r.lists {
		Lists.Recycle(s)
	}
	// Clear the tracking entries (they must not pin recycled buffers
	// beyond the pools) but keep the tracking slices' capacity: the next
	// batch through this region appends the same three-or-four segments
	// without reallocating. Live regions compare equal under DeepEqual by
	// entry content alone, so a reused region is indistinguishable from a
	// fresh one to the parity harnesses that compare results whole.
	clear(r.ids)
	clear(r.floats)
	clear(r.lists)
	r.ids, r.floats, r.lists = r.ids[:0], r.floats[:0], r.lists[:0]
	counters.regionLive.Add(-1)
	regionPool.Put(r)
}
