package gateway

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"lsdgnn/internal/cluster"
)

// innerHandler is a fake data plane that echoes the frame it received.
type innerHandler struct {
	mu      sync.Mutex
	block   chan struct{}
	got     [][]byte
	started chan struct{}
}

func (h *innerHandler) Handle(ctx context.Context, msg []byte) ([]byte, error) {
	h.mu.Lock()
	h.got = append(h.got, append([]byte(nil), msg...))
	h.mu.Unlock()
	if h.started != nil {
		h.started <- struct{}{}
	}
	if h.block != nil {
		<-h.block
	}
	return append([]byte("ok:"), msg...), nil
}

func testGate(t *testing.T, cfg WireGateConfig, inner cluster.Handler) *WireGate {
	t.Helper()
	if cfg.Tenants == nil {
		cfg.Tenants = []TenantConfig{{Name: "a", Key: "ak"}}
	}
	g, err := NewWireGate(cfg, inner)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func serverErrContains(t *testing.T, err error, want string) *cluster.ServerError {
	t.Helper()
	var se *cluster.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *cluster.ServerError", err)
	}
	if !strings.Contains(se.Msg, want) {
		t.Fatalf("rejection %q does not mention %q", se.Msg, want)
	}
	return se
}

func TestWireGateAuth(t *testing.T) {
	inner := &innerHandler{}
	g := testGate(t, WireGateConfig{}, inner)

	// Keyed frame passes and is unwrapped before the inner handler.
	req := cluster.EncodeAuthedRequest("ak", []byte{0x7f, 1, 2})
	resp, err := g.Handle(bg, req)
	if err != nil || string(resp) != "ok:\x7f\x01\x02" {
		t.Fatalf("authed frame: (%q, %v)", resp, err)
	}
	if g.Stats().Admitted() != 1 {
		t.Fatal("admitted counter did not move")
	}

	// Unknown key → 401, key redacted.
	_, err = g.Handle(bg, cluster.EncodeAuthedRequest("super-secret-key", []byte{1}))
	se := serverErrContains(t, err, "401")
	if strings.Contains(se.Msg, "super-secret-key") {
		t.Fatalf("rejection leaked the full key: %q", se.Msg)
	}

	// Unkeyed non-meta frame → 401.
	_, err = g.Handle(bg, []byte{cluster.OpGetNeighbors, 0, 0})
	serverErrContains(t, err, "401")
	if g.Stats().AuthFailures() != 2 {
		t.Fatalf("auth_failures = %d, want 2", g.Stats().AuthFailures())
	}

	// Bare OpMeta passes unauthenticated (bootstrap/discovery).
	if _, err := g.Handle(bg, []byte{cluster.OpMeta}); err != nil {
		t.Fatalf("bare meta rejected: %v", err)
	}

	// Truncated envelope → 401, not a panic.
	_, err = g.Handle(bg, []byte{cluster.OpAuthed, 10, 'a'})
	serverErrContains(t, err, "401")
}

func TestWireGateRateLimit(t *testing.T) {
	g := testGate(t, WireGateConfig{
		Tenants: []TenantConfig{{Name: "a", Key: "ak", Rate: 1, Burst: 2}},
	}, &innerHandler{})
	req := cluster.EncodeAuthedRequest("ak", []byte{1})
	for i := 0; i < 2; i++ {
		if _, err := g.Handle(bg, req); err != nil {
			t.Fatalf("frame %d within burst: %v", i, err)
		}
	}
	_, err := g.Handle(bg, req)
	serverErrContains(t, err, "429")
	if g.Stats().RateLimited() != 1 || g.Tenant("a").RateLimited() != 1 {
		t.Fatal("ratelimited counters did not move")
	}
}

func TestWireGateShedsAtMaxInflight(t *testing.T) {
	inner := &innerHandler{block: make(chan struct{}), started: make(chan struct{}, 4)}
	g := testGate(t, WireGateConfig{MaxInflight: 1}, inner)
	req := cluster.EncodeAuthedRequest("ak", []byte{1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := g.Handle(bg, req); err != nil {
			t.Errorf("first frame: %v", err)
		}
	}()
	<-inner.started
	_, err := g.Handle(bg, req)
	serverErrContains(t, err, "503")
	if g.Stats().Shed() != 1 {
		t.Fatal("shed counter did not move")
	}
	close(inner.block)
	<-done
	// Capacity freed: frames flow again.
	if _, err := g.Handle(bg, req); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestWireGateValidation(t *testing.T) {
	if _, err := NewWireGate(WireGateConfig{Tenants: []TenantConfig{{Name: "a", Key: "k"}}}, nil); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewWireGate(WireGateConfig{}, &innerHandler{}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := NewWireGate(WireGateConfig{Tenants: []TenantConfig{
		{Name: "a", Key: "k"}, {Name: "b", Key: "k"},
	}}, &innerHandler{}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestWireGateSnapshot(t *testing.T) {
	g := testGate(t, WireGateConfig{Tenants: []TenantConfig{
		{Name: "b", Key: "bk"}, {Name: "a", Key: "ak"},
	}}, &innerHandler{})
	if _, err := g.Handle(bg, cluster.EncodeAuthedRequest("ak", []byte{1})); err != nil {
		t.Fatal(err)
	}
	rows := g.Snapshot()
	if len(rows) != 2 || rows[0].Name != "a" || rows[1].Name != "b" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Admitted != 1 || rows[0].Completed != 1 {
		t.Fatalf("tenant a row = %+v", rows[0])
	}
	if len(g.Sources()) != 3 {
		t.Fatalf("sources = %d, want 3", len(g.Sources()))
	}
}
