package gateway

import (
	"errors"
	"fmt"
	"time"
)

// AuthError reports a request that presented no key or an unknown one.
// Deterministic: retrying with the same key cannot succeed.
type AuthError struct {
	// Key is the rejected key, redacted to its first four bytes so logs
	// never leak a full credential.
	Key string
}

// Error implements error.
func (e *AuthError) Error() string {
	return fmt.Sprintf("gateway: 401 unauthorized: unknown api key %q", redactKey(e.Key))
}

// redactKey keeps a short identifying prefix and drops the rest.
func redactKey(k string) string {
	if len(k) <= 4 {
		return k
	}
	return k[:4] + "…"
}

// RateLimitError reports a request rejected by the tenant's token bucket:
// the tenant is over its contracted rate. The request was never queued and
// consumed no engine capacity.
type RateLimitError struct {
	// Tenant is the over-rate tenant.
	Tenant string
	// RetryAfter is how long until the bucket holds enough tokens for a
	// request of the rejected size.
	RetryAfter time.Duration
}

// Error implements error.
func (e *RateLimitError) Error() string {
	return fmt.Sprintf("gateway: 429 rate limited: tenant %q over rate, retry after %v", e.Tenant, e.RetryAfter)
}

// AdmissionError reports a request shed by the gateway's overload control:
// the tenant's queue was full, or backpressure (pipeline window occupancy,
// SLO fast burn) forced the gateway to drop the heaviest queue before the
// serving path saturated. Shedding is load-dependent — retrying after
// backoff may succeed.
type AdmissionError struct {
	// Tenant is the tenant whose work was shed.
	Tenant string
	// Reason says which trigger fired ("queue full", "backpressure",
	// "overloaded").
	Reason string
}

// Error implements error.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("gateway: 503 shed: tenant %q: %s", e.Tenant, e.Reason)
}

// AsRateLimited extracts a *RateLimitError from err.
func AsRateLimited(err error) (*RateLimitError, bool) {
	var re *RateLimitError
	ok := errors.As(err, &re)
	return re, ok
}

// AsShed extracts a *AdmissionError from err.
func AsShed(err error) (*AdmissionError, bool) {
	var ae *AdmissionError
	ok := errors.As(err, &ae)
	return ae, ok
}
