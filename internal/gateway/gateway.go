// Package gateway is the multi-tenant front door of the serving stack —
// the control plane the paper's FaaS premise (§6–7) needs once pooled
// accelerators are sold to more than one customer. It layers, in order:
// per-tenant identity (API key → TenantConfig), token-bucket rate
// limiting, weighted-fair queueing into the dispatcher (deficit
// round-robin over bounded per-tenant queues), and load shedding driven by
// real backpressure — pipeline window occupancy and the SLO layer's
// fast-burn signal — so the heaviest queue is dropped before the serving
// path saturates. The autoscaler (autoscale.go) closes the Fig 16 loop:
// it grows and shrinks the engine pool against a perf-per-dollar target
// using the same perfmodel + cost machinery as the offline design-space
// exploration. The wire-plane twin (wiregate.go) enforces the same tenant
// contracts on the TCP serving plane.
package gateway

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/stats"
)

// Defaults for Config's zero fields.
const (
	// DefaultQueueDepth bounds each tenant's queue, in batches.
	DefaultQueueDepth = 64
	// DefaultQuantum is the deficit-round-robin replenishment per weight
	// unit per round, in roots.
	DefaultQuantum = 32
	// DefaultMaxInflight bounds concurrent batches into the backend.
	DefaultMaxInflight = 4
	// DefaultShedHighWater is the backpressure level (0..1) above which
	// the gateway sheds from the heaviest queue.
	DefaultShedHighWater = 0.9
	// DefaultBurnThreshold is the SLO fast-burn level above which the
	// gateway sheds (burn > 1 means the error budget is burning faster
	// than it refills — the page signal).
	DefaultBurnThreshold = 1.0
)

// Backend runs one admitted batch; the core system wires this to the
// pipelined software path or the dispatcher.
type Backend func(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error)

// Config assembles a Gateway.
type Config struct {
	// Tenants declares every tenant; at least one is required.
	Tenants []TenantConfig
	// QueueDepth bounds each tenant's queue in batches (0 =
	// DefaultQueueDepth). A full queue sheds the enqueuing batch.
	QueueDepth int
	// Quantum is the DRR replenishment in roots per weight unit per round
	// (0 = DefaultQuantum): each scheduling round, tenant i may move
	// Quantum×Weight_i roots toward the backend.
	Quantum int
	// MaxInflight bounds concurrent batches into the backend (0 =
	// DefaultMaxInflight) — the pacing point queues build behind.
	MaxInflight int
	// ShedHighWater is the Pressure level above which enqueues shed from
	// the heaviest queue (0 = DefaultShedHighWater).
	ShedHighWater float64
	// BurnThreshold is the Burn level above which enqueues shed (0 =
	// DefaultBurnThreshold).
	BurnThreshold float64
	// Pressure, when set, reports the serving path's backpressure in
	// [0,1] — the core system wires max(dispatcher slot occupancy,
	// pipeline window occupancy).
	Pressure func() float64
	// Burn, when set, reports the serving path's SLO fast-burn rate —
	// the core system wires the software-batch objective's BurnFast.
	Burn func() float64
	// SLOs receives one "tenant_<name>" latency objective per tenant;
	// nil builds a private tracker (Gateway.SLOs exposes it either way).
	SLOs *stats.SLOTracker
	// Tracer, when set, records per-batch queue wait as a gate hop.
	Tracer *obs.Tracer
	// Clock overrides time.Now for the rate-limit buckets (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.Quantum <= 0 {
		c.Quantum = DefaultQuantum
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.ShedHighWater <= 0 {
		c.ShedHighWater = DefaultShedHighWater
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = DefaultBurnThreshold
	}
	return c
}

// call is one admitted batch waiting in its tenant queue.
type call struct {
	ctx   context.Context
	roots []graph.NodeID
	enq   time.Time
	done  chan callResult
}

type callResult struct {
	res *sampler.Result
	err error
}

// tenant is the runtime state behind one TenantConfig.
type tenant struct {
	cfg    TenantConfig
	bucket *bucket
	slo    *stats.SLO
	stats  *TenantStats

	// Guarded by the gateway mutex.
	queue       []*call
	queuedRoots int
	deficit     int
	// visited marks a tenant currently holding the scheduler's turn, so
	// its deficit replenishes once per turn, not once per serve.
	visited bool
}

// Gateway is the multi-tenant front door. Safe for concurrent Sample
// calls; one scheduler goroutine drains the tenant queues in
// deficit-round-robin order into the backend.
type Gateway struct {
	cfg     Config
	backend Backend
	stats   Stats
	slos    *stats.SLOTracker

	byKey  map[string]*tenant
	byName map[string]*tenant
	order  []*tenant

	mu     sync.Mutex
	cond   *sync.Cond
	rr     int
	closed bool

	inflight chan struct{}
	wg       sync.WaitGroup
}

// New builds a gateway over backend and starts its scheduler.
func New(cfg Config, backend Backend) (*Gateway, error) {
	if backend == nil {
		return nil, fmt.Errorf("gateway: nil backend")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("gateway: no tenants configured")
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:      cfg,
		backend:  backend,
		slos:     cfg.SLOs,
		byKey:    map[string]*tenant{},
		byName:   map[string]*tenant{},
		inflight: make(chan struct{}, cfg.MaxInflight),
	}
	if g.slos == nil {
		g.slos = stats.NewSLOTracker()
	}
	g.cond = sync.NewCond(&g.mu)
	for i, tc := range cfg.Tenants {
		norm, err := tc.withDefaults()
		if err != nil {
			return nil, err
		}
		cfg.Tenants[i] = norm
		if g.byName[norm.Name] != nil {
			return nil, fmt.Errorf("gateway: duplicate tenant name %q", norm.Name)
		}
		if g.byKey[norm.Key] != nil {
			return nil, fmt.Errorf("gateway: duplicate api key for tenant %q", norm.Name)
		}
		t := &tenant{
			cfg:    norm,
			bucket: newBucket(norm.Rate, norm.Burst, cfg.Clock),
			slo:    g.slos.Objective(stats.Objective{Name: "tenant_" + norm.Name, Threshold: norm.SLO}),
			stats:  newTenantStats(norm.Name),
		}
		g.byKey[norm.Key] = t
		g.byName[norm.Name] = t
		g.order = append(g.order, t)
	}
	g.wg.Add(1)
	go g.run()
	return g, nil
}

// Close stops the scheduler after the queues drain; further Sample calls
// fail. In-flight backend batches finish.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.cond.Broadcast()
	g.wg.Wait()
}

// Stats exposes the "gateway" stats layer.
func (g *Gateway) Stats() *Stats { return &g.stats }

// SLOs exposes the tracker holding the per-tenant objectives.
func (g *Gateway) SLOs() *stats.SLOTracker { return g.slos }

// Tenant returns the named tenant's stats layer (nil if unknown).
func (g *Gateway) Tenant(name string) *TenantStats {
	if t := g.byName[name]; t != nil {
		return t.stats
	}
	return nil
}

// TenantSLO returns the named tenant's latency objective (nil if unknown).
func (g *Gateway) TenantSLO(name string) *stats.SLO {
	if t := g.byName[name]; t != nil {
		return t.slo
	}
	return nil
}

// Sources lists every stats source the gateway owns — the "gateway" layer
// plus one "gateway.<name>" layer per tenant — for registry registration.
func (g *Gateway) Sources() []stats.Source {
	out := []stats.Source{&g.stats}
	for _, t := range g.order {
		out = append(out, t.stats)
	}
	return out
}

// Snapshot returns the /tenants view: per-tenant config + live counters.
func (g *Gateway) Snapshot() []TenantSnapshot {
	cfgs := make([]TenantConfig, 0, len(g.order))
	sts := make(map[string]*TenantStats, len(g.order))
	for _, t := range g.order {
		cfgs = append(cfgs, t.cfg)
		sts[t.cfg.Name] = t.stats
	}
	return snapshotTenants(cfgs, sts)
}

// Sample admits, queues, and runs one batch as the tenant owning key.
// Rejections are typed: *AuthError (unknown key), *RateLimitError (over
// contracted rate), *AdmissionError (shed by overload control). Admitted
// batches wait their turn in the tenant's queue and return the backend's
// result verbatim — including partial-degradation errors, which count as
// completions, not failures.
func (g *Gateway) Sample(ctx context.Context, key string, roots []graph.NodeID) (*sampler.Result, error) {
	t := g.byKey[key]
	if t == nil {
		g.stats.authFailures.Inc()
		return nil, &AuthError{Key: key}
	}
	if ok, retry := t.bucket.take(float64(len(roots))); !ok {
		g.stats.ratelimited.Inc()
		t.stats.ratelimited.Inc()
		return nil, &RateLimitError{Tenant: t.cfg.Name, RetryAfter: retry}
	}
	c := &call{ctx: ctx, roots: roots, enq: time.Now(), done: make(chan callResult, 1)}
	if err := g.enqueue(t, c); err != nil {
		return nil, err
	}
	select {
	case out := <-c.done:
		return out.res, out.err
	case <-ctx.Done():
		// The scheduler skips canceled calls when it reaches them.
		return nil, ctx.Err()
	}
}

// enqueue applies overload control and appends c to t's queue.
func (g *Gateway) enqueue(t *tenant, c *call) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("gateway: closed")
	}
	if len(t.queue) >= g.cfg.QueueDepth {
		g.mu.Unlock()
		g.recordShed(t)
		return &AdmissionError{Tenant: t.cfg.Name, Reason: "queue full"}
	}
	// Backpressure shedding: when the serving path is near saturation
	// (window occupancy past the high-water mark) or the SLO budget is
	// fast-burning, shed new work from whichever tenant already holds the
	// heaviest per-weight queue — the greedy tenant sheds itself while a
	// light tenant's near-empty queue keeps admitting.
	if g.overloaded() && g.heaviestLocked(t) {
		g.mu.Unlock()
		g.recordShed(t)
		return &AdmissionError{Tenant: t.cfg.Name, Reason: "backpressure"}
	}
	t.queue = append(t.queue, c)
	t.queuedRoots += len(c.roots)
	depth := g.depthLocked()
	g.mu.Unlock()
	g.stats.admitted.Inc()
	t.stats.admitted.Inc()
	g.stats.recordQueueDepth(depth)
	g.cond.Signal()
	return nil
}

// recordShed counts one shed batch on the gateway and tenant layers.
func (g *Gateway) recordShed(t *tenant) {
	g.stats.shed.Inc()
	t.stats.shed.Inc()
}

// overloaded reports whether a shedding trigger is armed.
func (g *Gateway) overloaded() bool {
	if p := g.cfg.Pressure; p != nil && p() >= g.cfg.ShedHighWater {
		return true
	}
	if b := g.cfg.Burn; b != nil && b() > g.cfg.BurnThreshold {
		return true
	}
	return false
}

// heaviestLocked reports whether t holds the heaviest per-weight queue
// (strictly positive). Caller holds g.mu.
func (g *Gateway) heaviestLocked(t *tenant) bool {
	load := func(x *tenant) float64 { return float64(x.queuedRoots) / float64(x.cfg.Weight) }
	mine := load(t)
	if mine <= 0 {
		return false
	}
	for _, u := range g.order {
		if u != t && load(u) > mine {
			return false
		}
	}
	return true
}

// depthLocked sums queued batches across tenants. Caller holds g.mu.
func (g *Gateway) depthLocked() int {
	n := 0
	for _, t := range g.order {
		n += len(t.queue)
	}
	return n
}

// run is the scheduler: deficit round-robin over the tenant queues into
// the bounded backend.
func (g *Gateway) run() {
	defer g.wg.Done()
	g.mu.Lock()
	for {
		c, t := g.nextLocked()
		if c == nil {
			if g.closed {
				g.mu.Unlock()
				// Fail whatever raced in after the last scan.
				g.failPending()
				return
			}
			g.cond.Wait()
			continue
		}
		depth := g.depthLocked()
		g.mu.Unlock()
		g.stats.recordQueueDepth(depth)
		g.dispatch(t, c)
		g.mu.Lock()
	}
}

// nextLocked picks the next call by deficit round-robin: when the
// scheduler's turn reaches a backlogged tenant, that tenant's deficit
// grows by Quantum×Weight roots once, and it keeps the turn — serving one
// head-of-line batch per call — until the deficit no longer covers the
// head batch. Unspent deficit carries across turns (so a batch larger
// than one replenishment eventually runs) but idle tenants forfeit theirs
// (standard DRR — credit does not accrue while the queue is empty).
// Returns nil when every queue is empty. Caller holds g.mu.
func (g *Gateway) nextLocked() (*call, *tenant) {
	n := len(g.order)
	for {
		any := false
		for i := 0; i < n; i++ {
			t := g.order[g.rr]
			if len(t.queue) == 0 {
				t.deficit = 0
				t.visited = false
				g.rr = (g.rr + 1) % n
				continue
			}
			any = true
			if !t.visited {
				t.deficit += g.cfg.Quantum * t.cfg.Weight
				t.visited = true
			}
			cost := len(t.queue[0].roots)
			if t.deficit < cost {
				// Turn over; the remaining deficit carries to next turn.
				t.visited = false
				g.rr = (g.rr + 1) % n
				continue
			}
			c := t.queue[0]
			t.queue = t.queue[1:]
			t.queuedRoots -= cost
			t.deficit -= cost
			if len(t.queue) == 0 {
				t.deficit = 0
				t.visited = false
				g.rr = (g.rr + 1) % n
			}
			return c, t
		}
		if !any {
			return nil, nil
		}
	}
}

// dispatch pushes one dequeued call into the backend, bounded by the
// in-flight semaphore.
func (g *Gateway) dispatch(t *tenant, c *call) {
	if err := c.ctx.Err(); err != nil {
		// Canceled while queued: the waiter already returned; nothing ran.
		c.done <- callResult{err: err}
		return
	}
	g.inflight <- struct{}{}
	wait := time.Since(c.enq)
	g.stats.admitWait.ObserveDuration(wait)
	if tr := g.cfg.Tracer; tr != nil {
		if id, ok := obs.FromContext(c.ctx); ok {
			tr.Observe(id, obs.HopGateWait, c.enq, wait)
		}
	}
	g.stats.dispatched.Inc()
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.inflight
			g.wg.Done()
		}()
		res, err := g.backend(c.ctx, c.roots)
		dur := time.Since(c.enq)
		// A degraded batch (partial error alongside a layout-complete
		// result) is a completion: its latency is real and its SLO
		// classification is by latency alone, like the client path.
		failed := err != nil && res == nil
		if failed {
			g.stats.batchErrors.Inc()
			t.stats.batchErrors.Inc()
			t.stats.lat.ObserveError()
		} else {
			g.stats.completed.Inc()
			t.stats.completed.Inc()
			t.stats.lat.Observe(dur)
		}
		t.slo.ObserveLatency(dur, failed)
		c.done <- callResult{res: res, err: err}
	}()
}

// failPending drains any call that slipped into a queue during shutdown.
func (g *Gateway) failPending() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, t := range g.order {
		for _, c := range t.queue {
			c.done <- callResult{err: fmt.Errorf("gateway: closed")}
		}
		t.queue, t.queuedRoots = nil, 0
	}
}
