package gateway

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Traffic classes, after the two workload families in the related work:
// GraphAGILE-style low-latency inference and HP-GNN-style throughput
// training. The class is descriptive (it labels the tenant in reports and
// /tenants); fairness itself comes from Weight and the SLO from SLO.
const (
	ClassLatency    = "latency"
	ClassThroughput = "throughput"
)

// TenantConfig declares one tenant of the serving gateway: its identity
// (API key), its contracted rate, its weight in the fair scheduler, and
// its latency objective.
type TenantConfig struct {
	// Name identifies the tenant in stats layers ("gateway.<name>"), SLO
	// objectives ("tenant_<name>"), and error messages.
	Name string
	// Key is the tenant's API key. Requests present it via
	// Gateway.Sample / cluster.WithAPIKey.
	Key string
	// Class labels the traffic class: ClassLatency or ClassThroughput
	// (default ClassLatency).
	Class string
	// Rate is the token-bucket refill rate: roots per second at the
	// in-process gateway, frames per second at the wire gate. 0 means
	// unlimited.
	Rate float64
	// Burst is the bucket capacity in the same unit as Rate; 0 defaults
	// to one second's worth of Rate (minimum 1).
	Burst float64
	// Weight is the tenant's share in the deficit-round-robin scheduler;
	// 0 defaults to 1.
	Weight int
	// SLO is the tenant's latency objective threshold: an admitted batch
	// is good iff it completes within this budget. 0 takes
	// DefaultTenantSLO.
	SLO time.Duration
}

// DefaultTenantSLO is the per-tenant latency objective applied when a
// TenantConfig leaves SLO zero — simulation-scale, matching the core
// system's software-batch budget.
const DefaultTenantSLO = 50 * time.Millisecond

// withDefaults normalizes zero fields and validates identity.
func (c TenantConfig) withDefaults() (TenantConfig, error) {
	if c.Name == "" {
		return c, fmt.Errorf("gateway: tenant with empty name")
	}
	if c.Key == "" {
		return c, fmt.Errorf("gateway: tenant %q has no api key", c.Name)
	}
	switch c.Class {
	case "":
		c.Class = ClassLatency
	case ClassLatency, ClassThroughput:
	default:
		return c, fmt.Errorf("gateway: tenant %q has unknown class %q", c.Name, c.Class)
	}
	if c.Rate < 0 || c.Burst < 0 {
		return c, fmt.Errorf("gateway: tenant %q has negative rate/burst", c.Name)
	}
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.Weight < 0 {
		return c, fmt.Errorf("gateway: tenant %q has negative weight %d", c.Name, c.Weight)
	}
	if c.Burst == 0 && c.Rate > 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.SLO == 0 {
		c.SLO = DefaultTenantSLO
	}
	return c, nil
}

// ParseTenants parses the -tenants flag syntax: semicolon-separated
// tenants, each a comma-separated key=value list:
//
//	name=alice,key=ak1,class=latency,rate=500,burst=64,weight=4,slo=50ms;name=bob,key=bk1,class=throughput,rate=100
//
// name and key are required; everything else takes the TenantConfig
// defaults.
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	seenName := map[string]bool{}
	seenKey := map[string]bool{}
	for _, ts := range strings.Split(spec, ";") {
		ts = strings.TrimSpace(ts)
		if ts == "" {
			continue
		}
		var c TenantConfig
		for _, kv := range strings.Split(ts, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("gateway: tenant spec field %q is not key=value", kv)
			}
			var err error
			switch k {
			case "name":
				c.Name = v
			case "key":
				c.Key = v
			case "class":
				c.Class = v
			case "rate":
				c.Rate, err = strconv.ParseFloat(v, 64)
			case "burst":
				c.Burst, err = strconv.ParseFloat(v, 64)
			case "weight":
				c.Weight, err = strconv.Atoi(v)
			case "slo":
				c.SLO, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("gateway: unknown tenant spec field %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("gateway: tenant spec field %q: %v", kv, err)
			}
		}
		norm, err := c.withDefaults()
		if err != nil {
			return nil, err
		}
		if seenName[norm.Name] {
			return nil, fmt.Errorf("gateway: duplicate tenant name %q", norm.Name)
		}
		if seenKey[norm.Key] {
			return nil, fmt.Errorf("gateway: duplicate api key for tenant %q", norm.Name)
		}
		seenName[norm.Name], seenKey[norm.Key] = true, true
		out = append(out, norm)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gateway: empty tenant spec")
	}
	return out, nil
}

// bucket is a token bucket with an injectable clock. A nil bucket admits
// everything (unlimited tenant).
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens/s
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newBucket(rate, burst float64, now func() time.Time) *bucket {
	if rate <= 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// take withdraws n tokens. On refusal it returns how long until the
// bucket would hold n tokens (capped at the time to fill from empty).
func (b *bucket) take(n float64) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	missing := n - b.tokens
	if missing > b.burst {
		missing = b.burst
	}
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// TenantSnapshot is the /tenants view of one tenant: configuration plus
// live counters.
type TenantSnapshot struct {
	Name        string        `json:"name"`
	Class       string        `json:"class"`
	Rate        float64       `json:"rate"`
	Burst       float64       `json:"burst"`
	Weight      int           `json:"weight"`
	SLO         time.Duration `json:"slo_ns"`
	Admitted    int64         `json:"admitted"`
	RateLimited int64         `json:"ratelimited"`
	Shed        int64         `json:"shed"`
	Completed   int64         `json:"completed"`
	Errors      int64         `json:"errors"`
}

// snapshotTenants builds sorted /tenants rows from config + stats pairs.
func snapshotTenants(cfgs []TenantConfig, sts map[string]*TenantStats) []TenantSnapshot {
	out := make([]TenantSnapshot, 0, len(cfgs))
	for _, c := range cfgs {
		row := TenantSnapshot{
			Name: c.Name, Class: c.Class, Rate: c.Rate, Burst: c.Burst,
			Weight: c.Weight, SLO: c.SLO,
		}
		if st := sts[c.Name]; st != nil {
			row.Admitted = st.admitted.Value()
			row.RateLimited = st.ratelimited.Value()
			row.Shed = st.shed.Value()
			row.Completed = st.completed.Value()
			row.Errors = st.batchErrors.Value()
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
