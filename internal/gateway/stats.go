package gateway

import (
	"sync"

	"lsdgnn/internal/stats"
)

// Stats is the "gateway" stats layer: the front door's admission,
// fairness, shedding, and autoscaling counters. The zero value is ready to
// use — servers without a configured gateway pre-register an idle Stats so
// every lsdgnn_gateway_* series exists at zero from the first scrape, and
// gate-fronted servers bump the same shape once traffic flows.
type Stats struct {
	// admitted counts batches (or frames, at the wire gate) that passed
	// auth, rate limiting, and overload control.
	admitted     stats.Counter
	authFailures stats.Counter
	ratelimited  stats.Counter
	// shed counts work rejected by overload control: a full tenant queue
	// or a backpressure-triggered drop of the heaviest queue.
	shed stats.Counter
	// dispatched/completed bracket the backend: dispatched when a call
	// leaves its tenant queue, completed when the backend returns.
	dispatched  stats.Counter
	completed   stats.Counter
	batchErrors stats.Counter
	// scaleUps/scaleDowns count autoscaler engine-count changes.
	scaleUps   stats.Counter
	scaleDowns stats.Counter

	// admitWait observes queue wait: admission to backend dispatch.
	admitWait stats.Histogram

	mu            sync.Mutex
	queueDepth    int
	queuePeak     int
	enginesActive int
}

// recordQueueDepth tracks the instantaneous and peak total queue depth
// (batches waiting across all tenants).
func (s *Stats) recordQueueDepth(n int) {
	s.mu.Lock()
	s.queueDepth = n
	if n > s.queuePeak {
		s.queuePeak = n
	}
	s.mu.Unlock()
}

// setEnginesActive records the autoscaler's current engine count.
func (s *Stats) setEnginesActive(n int) {
	s.mu.Lock()
	s.enginesActive = n
	s.mu.Unlock()
}

// Admitted returns the batches admitted so far.
func (s *Stats) Admitted() int64 { return s.admitted.Value() }

// AuthFailures returns the requests rejected for a missing/unknown key.
func (s *Stats) AuthFailures() int64 { return s.authFailures.Value() }

// RateLimited returns the batches rejected by a tenant token bucket.
func (s *Stats) RateLimited() int64 { return s.ratelimited.Value() }

// Shed returns the batches rejected by overload control.
func (s *Stats) Shed() int64 { return s.shed.Value() }

// Completed returns the batches the backend finished.
func (s *Stats) Completed() int64 { return s.completed.Value() }

// StatsSnapshot implements stats.Source under the "gateway" layer.
func (s *Stats) StatsSnapshot() stats.Snapshot {
	s.mu.Lock()
	depth, peak, engines := s.queueDepth, s.queuePeak, s.enginesActive
	s.mu.Unlock()
	return stats.Snapshot{Layer: "gateway", Metrics: []stats.Metric{
		s.admitted.Metric("admitted", "req"),
		s.authFailures.Metric("auth_failures", "req"),
		s.ratelimited.Metric("ratelimited", "req"),
		s.shed.Metric("shed", "req"),
		s.dispatched.Metric("dispatched", "req"),
		s.completed.Metric("completed", "req"),
		s.batchErrors.Metric("batch_errors", "req"),
		s.scaleUps.Metric("scale_ups", "events"),
		s.scaleDowns.Metric("scale_downs", "events"),
		{Name: "queue_depth", Value: float64(depth), Unit: "req"},
		{Name: "queue_peak", Value: float64(peak), Unit: "req"},
		{Name: "engines_active", Value: float64(engines), Unit: "engines"},
	}, Hists: []stats.HistogramSnapshot{
		s.admitWait.Snapshot("admit_wait", "sec"),
	}}
}

// TenantStats is one tenant's "gateway.<name>" stats layer: admission
// outcome counters plus the tenant's end-to-end latency recorder
// (cumulative + windowed histograms, the source of the per-tenant p999).
type TenantStats struct {
	name        string
	admitted    stats.Counter
	ratelimited stats.Counter
	shed        stats.Counter
	completed   stats.Counter
	batchErrors stats.Counter
	lat         *stats.Latency
}

func newTenantStats(name string) *TenantStats {
	return &TenantStats{name: name, lat: stats.NewLatency("gateway." + name)}
}

// Name returns the tenant this layer belongs to.
func (t *TenantStats) Name() string { return t.name }

// Admitted returns the tenant's admitted batches.
func (t *TenantStats) Admitted() int64 { return t.admitted.Value() }

// RateLimited returns the tenant's rate-limited batches.
func (t *TenantStats) RateLimited() int64 { return t.ratelimited.Value() }

// Shed returns the tenant's shed batches.
func (t *TenantStats) Shed() int64 { return t.shed.Value() }

// Completed returns the tenant's completed batches.
func (t *TenantStats) Completed() int64 { return t.completed.Value() }

// Latency exposes the tenant's end-to-end latency recorder; Window("10s")
// is the rolling histogram the fairness experiment reads its p999 from.
func (t *TenantStats) Latency() *stats.Latency { return t.lat }

// StatsSnapshot implements stats.Source under the "gateway.<name>" layer.
func (t *TenantStats) StatsSnapshot() stats.Snapshot {
	snap := t.lat.StatsSnapshot()
	snap.Metrics = append(snap.Metrics,
		t.admitted.Metric("admitted", "req"),
		t.ratelimited.Metric("ratelimited", "req"),
		t.shed.Metric("shed", "req"),
		t.completed.Metric("completed", "req"),
	)
	return snap
}
