package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/sampler"
)

var bg = context.Background()

// echoBackend returns a trivially valid result for any batch.
func echoBackend(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
	return &sampler.Result{Roots: append([]graph.NodeID(nil), roots...)}, nil
}

func twoTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "light", Key: "lk", Weight: 4},
		{Name: "heavy", Key: "hk", Weight: 1},
	}
}

func TestGatewayAuthAndEcho(t *testing.T) {
	g, err := New(Config{Tenants: twoTenants()}, echoBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	res, err := g.Sample(bg, "lk", []graph.NodeID{1, 2, 3})
	if err != nil || len(res.Roots) != 3 {
		t.Fatalf("Sample = (%v, %v), want 3 roots", res, err)
	}
	if g.Stats().Admitted() != 1 || g.Stats().Completed() != 1 {
		t.Fatalf("admitted/completed = %d/%d, want 1/1",
			g.Stats().Admitted(), g.Stats().Completed())
	}

	_, err = g.Sample(bg, "no-such-key", []graph.NodeID{1})
	var ae *AuthError
	if !errors.As(err, &ae) {
		t.Fatalf("unknown key: err = %v, want *AuthError", err)
	}
	if g.Stats().AuthFailures() != 1 {
		t.Fatalf("auth_failures = %d, want 1", g.Stats().AuthFailures())
	}
}

func TestGatewayRateLimit(t *testing.T) {
	// Fake clock: the bucket holds 4 root-tokens and never refills unless
	// we advance the clock.
	var nowNs atomic.Int64
	clock := func() time.Time { return time.Unix(0, nowNs.Load()) }
	g, err := New(Config{
		Tenants: []TenantConfig{{Name: "a", Key: "ak", Rate: 1, Burst: 4}},
		Clock:   clock,
	}, echoBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if _, err := g.Sample(bg, "ak", []graph.NodeID{1, 2, 3, 4}); err != nil {
		t.Fatalf("within burst: %v", err)
	}
	_, err = g.Sample(bg, "ak", []graph.NodeID{5})
	rl, ok := AsRateLimited(err)
	if !ok {
		t.Fatalf("over burst: err = %v, want *RateLimitError", err)
	}
	if rl.Tenant != "a" || rl.RetryAfter <= 0 {
		t.Fatalf("RateLimitError = %+v, want tenant a with positive RetryAfter", rl)
	}
	if g.Stats().RateLimited() != 1 || g.Tenant("a").RateLimited() != 1 {
		t.Fatal("ratelimited counters did not move")
	}

	// Advance past RetryAfter: the bucket refills and admits again.
	nowNs.Add(int64(rl.RetryAfter) + int64(time.Second))
	if _, err := g.Sample(bg, "ak", []graph.NodeID{5}); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

// TestGatewayBackpressureShedsHeaviest: with the overload trigger armed,
// the tenant holding the heaviest per-weight queue sheds itself while a
// light tenant keeps admitting.
func TestGatewayBackpressureShedsHeaviest(t *testing.T) {
	var pressure atomic.Value
	pressure.Store(0.0)
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	blocking := func(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
		started <- struct{}{}
		<-release
		return echoBackend(ctx, roots)
	}
	g, err := New(Config{
		Tenants:     twoTenants(),
		MaxInflight: 1,
		Pressure:    func() float64 { return pressure.Load().(float64) },
	}, blocking)
	if err != nil {
		t.Fatal(err)
	}

	// One heavy batch occupies the backend; two more sit in heavy's queue.
	var wg sync.WaitGroup
	results := make(chan error, 8)
	sampleAsync := func(key string, n int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			roots := make([]graph.NodeID, n)
			_, err := g.Sample(bg, key, roots)
			results <- err
		}()
	}
	sampleAsync("hk", 8)
	<-started // backend holds batch 1
	sampleAsync("hk", 8)
	sampleAsync("hk", 8)
	waitFor(t, func() bool { return g.Stats().Admitted() == 3 })

	// Arm the trigger: heavy (16 queued roots / weight 1) is heaviest, so
	// its next batch sheds; light's empty queue admits.
	pressure.Store(1.0)
	_, err = g.Sample(bg, "hk", make([]graph.NodeID, 8))
	shed, ok := AsShed(err)
	if !ok || shed.Tenant != "heavy" || shed.Reason != "backpressure" {
		t.Fatalf("heavy under pressure: err = %v, want backpressure AdmissionError", err)
	}
	sampleAsync("lk", 4)
	waitFor(t, func() bool { return g.Tenant("light").Admitted() == 1 })
	if got := g.Tenant("light").Shed(); got != 0 {
		t.Fatalf("light shed = %d, want 0", got)
	}
	if got := g.Tenant("heavy").Shed(); got != 1 {
		t.Fatalf("heavy shed = %d, want 1", got)
	}

	// Disarm and unblock the backend: everything admitted completes.
	pressure.Store(0.0)
	close(release)
	go func() { wg.Wait(); close(results) }()
	for err := range results {
		if err != nil {
			t.Fatalf("admitted batch failed: %v", err)
		}
	}
	g.Close()
}

func TestGatewayQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	blocking := func(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
		started <- struct{}{}
		<-release
		return echoBackend(ctx, roots)
	}
	g, err := New(Config{
		Tenants:     []TenantConfig{{Name: "a", Key: "ak"}},
		QueueDepth:  1,
		MaxInflight: 1,
	}, blocking)
	if err != nil {
		t.Fatal(err)
	}

	queueLen := func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.byName["a"].queue)
	}
	var wg sync.WaitGroup
	sampleAsync := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Sample(bg, "ak", []graph.NodeID{1}); err != nil {
				t.Errorf("admitted batch failed: %v", err)
			}
		}()
	}
	sampleAsync()
	<-started // batch 1 occupies the backend
	sampleAsync()
	// Wait until the scheduler has dequeued batch 2 (it parks on the
	// in-flight semaphore), then fill the queue with batch 3.
	waitFor(t, func() bool { return g.Stats().Admitted() == 2 && queueLen() == 0 })
	sampleAsync()
	waitFor(t, func() bool { return queueLen() == 1 })
	// Depth 1 is the configured bound: the next batch must shed.
	_, err = g.Sample(bg, "ak", []graph.NodeID{2})
	if shed, ok := AsShed(err); !ok || shed.Reason != "queue full" {
		t.Fatalf("err = %v, want queue-full AdmissionError", err)
	}
	close(release)
	wg.Wait()
	g.Close()
}

// TestDRRFairShare drives the scheduler directly: with weights 4:1 and
// single-root batches queued on both tenants, the weighted tenant drains
// ~4× faster.
func TestDRRFairShare(t *testing.T) {
	g := &Gateway{
		cfg:    Config{Quantum: 1}.withDefaults(),
		byKey:  map[string]*tenant{},
		byName: map[string]*tenant{},
	}
	g.cfg.Quantum = 1
	for _, tc := range twoTenants() {
		norm, err := tc.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		tn := &tenant{cfg: norm, stats: newTenantStats(norm.Name)}
		g.byName[norm.Name] = tn
		g.order = append(g.order, tn)
	}
	for _, tn := range g.order {
		for i := 0; i < 40; i++ {
			tn.queue = append(tn.queue, &call{roots: make([]graph.NodeID, 1)})
			tn.queuedRoots++
		}
	}
	counts := map[string]int{}
	for i := 0; i < 50; i++ {
		c, tn := g.nextLocked()
		if c == nil {
			t.Fatal("scheduler returned nil with backlogged queues")
		}
		counts[tn.cfg.Name]++
	}
	if counts["light"] < 3*counts["heavy"] {
		t.Fatalf("weight-4 tenant served %d vs weight-1's %d, want ≥3×",
			counts["light"], counts["heavy"])
	}
	if counts["heavy"] == 0 {
		t.Fatal("weight-1 tenant starved")
	}
}

// TestDRRLargeBatchNotStarved: a batch costing more than one quantum×weight
// round still runs — deficits accumulate across rounds for backlogged
// tenants.
func TestDRRLargeBatchNotStarved(t *testing.T) {
	g, err := New(Config{Tenants: twoTenants(), Quantum: 1}, echoBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// 100 roots ≫ quantum(1)×weight(1): needs 100 rounds of credit.
	res, err := g.Sample(bg, "hk", make([]graph.NodeID, 100))
	if err != nil || len(res.Roots) != 100 {
		t.Fatalf("large batch: (%v, %v)", res, err)
	}
}

func TestGatewayCanceledWhileQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	blocking := func(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
		started <- struct{}{}
		<-release
		return echoBackend(ctx, roots)
	}
	g, err := New(Config{Tenants: twoTenants(), MaxInflight: 1}, blocking)
	if err != nil {
		t.Fatal(err)
	}

	go g.Sample(bg, "hk", []graph.NodeID{1})
	<-started
	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := g.Sample(ctx, "hk", []graph.NodeID{2})
		done <- err
	}()
	waitFor(t, func() bool { return g.Stats().Admitted() == 2 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	g.Close()
}

func TestGatewayClose(t *testing.T) {
	g, err := New(Config{Tenants: twoTenants()}, echoBackend)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if _, err := g.Sample(bg, "lk", []graph.NodeID{1}); err == nil {
		t.Fatal("Sample after Close succeeded")
	}
}

func TestGatewaySnapshotAndSources(t *testing.T) {
	g, err := New(Config{Tenants: twoTenants()}, echoBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Sample(bg, "lk", []graph.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	rows := g.Snapshot()
	if len(rows) != 2 || rows[0].Name != "heavy" || rows[1].Name != "light" {
		t.Fatalf("snapshot rows = %+v, want sorted heavy/light", rows)
	}
	if rows[1].Admitted != 1 || rows[1].Completed != 1 {
		t.Fatalf("light row = %+v, want 1 admitted/completed", rows[1])
	}
	if len(g.Sources()) != 3 { // gateway + 2 tenants
		t.Fatalf("sources = %d, want 3", len(g.Sources()))
	}
	// Per-tenant SLO objectives are declared at construction.
	if g.TenantSLO("light") == nil || g.TenantSLO("heavy") == nil {
		t.Fatal("per-tenant SLOs missing")
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := ParseTenants("name=alice,key=ak1,class=latency,rate=500,burst=64,weight=4,slo=50ms;name=bob,key=bk1,class=throughput,rate=100")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(ts))
	}
	a := ts[0]
	if a.Name != "alice" || a.Key != "ak1" || a.Rate != 500 || a.Burst != 64 ||
		a.Weight != 4 || a.SLO != 50*time.Millisecond {
		t.Fatalf("alice = %+v", a)
	}
	if ts[1].Class != ClassThroughput || ts[1].Weight != 1 || ts[1].Burst != 100 {
		t.Fatalf("bob defaults = %+v", ts[1])
	}
	for _, bad := range []string{
		"",
		"key=nk",                      // no name
		"name=x",                      // no key
		"name=x,key=k,class=premium",  // unknown class
		"name=x,key=k;name=x,key=j",   // duplicate name
		"name=x,key=k;name=y,key=k",   // duplicate key
		"name=x,key=k,rate=fast",      // bad number
		"name=x,key=k,slo=soon",       // bad duration
		"name=x,key=k,favourite=blue", // unknown field
		"name=x,key=k,weight",         // not key=value
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBucket(10, 5, func() time.Time { return now })
	if ok, _ := b.take(5); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, retry := b.take(1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}
	now = now.Add(100 * time.Millisecond) // 1 token refilled
	if ok, _ := b.take(1); !ok {
		t.Fatal("refilled token not granted")
	}
	// nil bucket (unlimited tenant) admits everything.
	var unlimited *bucket
	if ok, _ := unlimited.take(1e9); !ok {
		t.Fatal("nil bucket refused")
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in 2s")
}

// errorBackend exercises the failure accounting path.
func TestGatewayBackendError(t *testing.T) {
	g, err := New(Config{Tenants: twoTenants()}, func(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
		return nil, fmt.Errorf("store down")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Sample(bg, "lk", []graph.NodeID{1}); err == nil {
		t.Fatal("backend error swallowed")
	}
	if g.Tenant("light").Completed() != 0 {
		t.Fatal("failed batch counted as completed")
	}
	snap := g.Tenant("light").StatsSnapshot()
	var errCount float64
	for _, m := range snap.Metrics {
		if m.Name == "batch_errors" {
			errCount = m.Value
		}
	}
	if errCount != 1 {
		t.Fatalf("tenant batch_errors = %v, want 1", errCount)
	}
}
