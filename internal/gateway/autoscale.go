package gateway

import (
	"fmt"
	"math"
	"sync"

	"lsdgnn/internal/cost"
	"lsdgnn/internal/perfmodel"
)

// EnginePool is the autoscaler's handle on the engine fleet —
// core.Dispatcher implements it.
type EnginePool interface {
	// Active returns the engines currently taking new batches.
	Active() int
	// SetActive resizes the taking-traffic set, clamped to the built
	// fleet; deactivated engines drain their in-flight batches. Returns
	// the applied count.
	SetActive(n int) int
}

// AutoscaleConfig parameterizes the perf-per-dollar feedback loop: the
// paper's Fig 16 study (perfmodel throughput × cost-model price) run live
// against offered load instead of offline over the design space.
type AutoscaleConfig struct {
	// Min/Max bound the active engine count. Min 0 defaults to 1; Max 0
	// defaults to the pool's initial Active count.
	Min, Max int
	// Machine is the per-engine performance model (e.g. faas.PoCMachine).
	Machine perfmodel.Machine
	// Workload characterizes the sampling traffic (perfmodel.Derive).
	Workload perfmodel.Workload
	// Cost prices an engine's hardware (cost.Fit over the price table).
	Cost cost.Model
	// EngineVCPU/EngineMemGB/EngineFPGAs describe one engine's slice of
	// an instance for pricing; zeros default to 4 vCPU / 16 GB / 1 FPGA.
	EngineVCPU  int
	EngineMemGB float64
	EngineFPGAs int
	// HighWater is the per-engine utilization the scaler plans for:
	// engines are added so offered/capacity stays below it (0 = 0.8).
	HighWater float64
	// LowWater guards scale-down: engines drain only when utilization at
	// the current size falls below it (0 = 0.5) — hysteresis against
	// flapping around the high-water mark.
	LowWater float64
}

func (c AutoscaleConfig) withDefaults(pool EnginePool) AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = pool.Active()
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.EngineVCPU <= 0 {
		c.EngineVCPU = 4
	}
	if c.EngineMemGB <= 0 {
		c.EngineMemGB = 16
	}
	if c.EngineFPGAs <= 0 {
		c.EngineFPGAs = 1
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.8
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.5
	}
	return c
}

// Decision is one Evaluate outcome: the model inputs, the sizing verdict,
// and the resulting perf-per-dollar — printable for reports.
type Decision struct {
	// Offered is the measured demand, roots/s.
	Offered float64
	// PerEngine is the modeled per-engine capacity, roots/s, and
	// Bottleneck its binding constraint.
	PerEngine  float64
	Bottleneck string
	// EnginePrice is the cost model's $/hr for one engine's hardware.
	EnginePrice float64
	// Before/After are the active engine counts around the decision.
	Before, After int
	// Utilization is offered / (PerEngine × After).
	Utilization float64
	// PerfPerDollar is the served throughput per $/hr at the new size —
	// min(Offered, capacity) / (After × EnginePrice).
	PerfPerDollar float64
	// Reason explains the verdict ("scale up", "scale down", "hold").
	Reason string
}

// String renders the decision in the report style of the experiments.
func (d Decision) String() string {
	return fmt.Sprintf(
		"offered %.0f roots/s, per-engine %.0f roots/s (%s), engine $%.2f/hr: %d → %d engines (%s), util %.2f, %.0f roots/s per $/hr",
		d.Offered, d.PerEngine, d.Bottleneck, d.EnginePrice,
		d.Before, d.After, d.Reason, d.Utilization, d.PerfPerDollar)
}

// Autoscaler sizes an EnginePool against offered load. Evaluate is the
// whole control loop body: callers invoke it on their own cadence (per
// scrape, per window) with the demand they measured.
type Autoscaler struct {
	cfg  AutoscaleConfig
	pool EnginePool
	// stats, when set, receives scale_ups/scale_downs/engines_active.
	stats *Stats

	mu sync.Mutex
}

// NewAutoscaler builds an autoscaler over pool.
func NewAutoscaler(cfg AutoscaleConfig, pool EnginePool) (*Autoscaler, error) {
	if pool == nil {
		return nil, fmt.Errorf("gateway: autoscaler needs an engine pool")
	}
	cfg = cfg.withDefaults(pool)
	return &Autoscaler{cfg: cfg, pool: pool}, nil
}

// AttachStats routes scaling events into a gateway stats layer.
func (a *Autoscaler) AttachStats(s *Stats) {
	a.mu.Lock()
	a.stats = s
	a.mu.Unlock()
	if s != nil {
		s.setEnginesActive(a.pool.Active())
	}
}

// Evaluate runs one control-loop step: predict per-engine capacity from
// the performance model, size the pool so offered load sits below the
// high-water utilization, price the outcome with the cost model, and
// apply the change. Scale-down is hysteretic (LowWater) so the pool does
// not flap around the planning threshold.
func (a *Autoscaler) Evaluate(offeredRootsPerSec float64) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	pred := perfmodel.Predict(a.cfg.Machine, a.cfg.Workload)
	per := pred.RootsPerSecond
	cur := a.pool.Active()
	d := Decision{
		Offered:     offeredRootsPerSec,
		PerEngine:   per,
		Bottleneck:  pred.Bottleneck,
		EnginePrice: a.cfg.Cost.Price(a.cfg.EngineVCPU, a.cfg.EngineMemGB, a.cfg.EngineFPGAs, 0),
		Before:      cur,
	}
	target := cur
	if per > 0 {
		need := int(math.Ceil(offeredRootsPerSec / (per * a.cfg.HighWater)))
		if need < a.cfg.Min {
			need = a.cfg.Min
		}
		if need > a.cfg.Max {
			need = a.cfg.Max
		}
		switch {
		case need > cur:
			target = need
		case need < cur && offeredRootsPerSec < per*float64(cur)*a.cfg.LowWater:
			// Demand fell well below what the current fleet can serve:
			// drain down to the planned size.
			target = need
		}
	}
	d.After = a.pool.SetActive(target)
	switch {
	case d.After > cur:
		d.Reason = "scale up"
		if a.stats != nil {
			a.stats.scaleUps.Inc()
		}
	case d.After < cur:
		d.Reason = "scale down"
		if a.stats != nil {
			a.stats.scaleDowns.Inc()
		}
	default:
		d.Reason = "hold"
	}
	if a.stats != nil {
		a.stats.setEnginesActive(d.After)
	}
	if per > 0 && d.After > 0 {
		d.Utilization = offeredRootsPerSec / (per * float64(d.After))
		served := math.Min(offeredRootsPerSec, per*float64(d.After))
		if d.EnginePrice > 0 {
			d.PerfPerDollar = served / (float64(d.After) * d.EnginePrice)
		}
	}
	return d
}
