package gateway

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"lsdgnn/internal/cluster"
	"lsdgnn/internal/stats"
)

// WireGateConfig assembles a WireGate — the gateway's enforcement point on
// the TCP serving plane.
type WireGateConfig struct {
	// Tenants declares every tenant; at least one is required. Rate and
	// Burst apply per frame here (the wire plane cannot see roots).
	Tenants []TenantConfig
	// MaxInflight bounds frames concurrently inside the server across all
	// tenants; excess frames are shed with a 503-class rejection. 0
	// disables the cap.
	MaxInflight int
	// Clock overrides time.Now for the rate-limit buckets (tests).
	Clock func() time.Time
}

// wireTenant is one tenant's wire-plane state.
type wireTenant struct {
	cfg    TenantConfig
	bucket *bucket
	stats  *TenantStats
}

// WireGate wraps a cluster.Handler with per-tenant key authentication,
// frame-rate limiting, and an in-flight shed cap. It sits OUTERMOST in
// the server's handler chain — outside the SLO middleware — so rejected
// traffic never burns the server's error budget: a tenant over its rate
// is the tenant's problem, not the operator's.
//
// Rejections are *cluster.ServerError values, which ride the TCP reject
// status: deterministic, never retried, never counted against the
// client's circuit breakers. A bare OpMeta frame (version discovery)
// passes unauthenticated so bootstrap against a gated server still works
// for clients probing capabilities; every other unkeyed frame is a
// 401-class rejection.
type WireGate struct {
	inner       cluster.Handler
	stats       Stats
	byKey       map[string]*wireTenant
	order       []*wireTenant
	cfgs        []TenantConfig
	maxInflight int64
	inflight    atomic.Int64
}

// NewWireGate builds a gate over inner.
func NewWireGate(cfg WireGateConfig, inner cluster.Handler) (*WireGate, error) {
	if inner == nil {
		return nil, fmt.Errorf("gateway: wire gate needs an inner handler")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("gateway: no tenants configured")
	}
	g := &WireGate{
		inner:       inner,
		byKey:       map[string]*wireTenant{},
		maxInflight: int64(cfg.MaxInflight),
	}
	for _, tc := range cfg.Tenants {
		norm, err := tc.withDefaults()
		if err != nil {
			return nil, err
		}
		if g.byKey[norm.Key] != nil {
			return nil, fmt.Errorf("gateway: duplicate api key for tenant %q", norm.Name)
		}
		t := &wireTenant{
			cfg:    norm,
			bucket: newBucket(norm.Rate, norm.Burst, cfg.Clock),
			stats:  newTenantStats(norm.Name),
		}
		g.byKey[norm.Key] = t
		g.order = append(g.order, t)
		g.cfgs = append(g.cfgs, norm)
	}
	return g, nil
}

// Stats exposes the gate's "gateway" stats layer.
func (g *WireGate) Stats() *Stats { return &g.stats }

// Tenant returns the named tenant's stats layer (nil if unknown).
func (g *WireGate) Tenant(name string) *TenantStats {
	for _, t := range g.order {
		if t.cfg.Name == name {
			return t.stats
		}
	}
	return nil
}

// Sources lists the gate's stats sources: the "gateway" layer plus one
// "gateway.<name>" layer per tenant.
func (g *WireGate) Sources() []stats.Source {
	out := []stats.Source{&g.stats}
	for _, t := range g.order {
		out = append(out, t.stats)
	}
	return out
}

// Snapshot returns the /tenants view.
func (g *WireGate) Snapshot() []TenantSnapshot {
	sts := make(map[string]*TenantStats, len(g.order))
	for _, t := range g.order {
		sts[t.cfg.Name] = t.stats
	}
	return snapshotTenants(g.cfgs, sts)
}

// Handle implements cluster.Handler: unwrap the OpAuthed envelope, admit
// or reject, then delegate the inner frame.
func (g *WireGate) Handle(ctx context.Context, msg []byte) ([]byte, error) {
	if len(msg) == 0 {
		return g.inner.Handle(ctx, msg)
	}
	if msg[0] != cluster.OpAuthed {
		// Version discovery stays open: a keyed client wraps its meta
		// request too, but an anonymous probe may ask what this server
		// speaks before authenticating.
		if msg[0] == cluster.OpMeta {
			return g.inner.Handle(ctx, msg)
		}
		g.stats.authFailures.Inc()
		return nil, &cluster.ServerError{Msg: "gateway: 401 unauthorized: request carries no api key"}
	}
	key, inner, err := cluster.DecodeAuthedRequest(msg)
	if err != nil {
		g.stats.authFailures.Inc()
		return nil, &cluster.ServerError{Msg: "gateway: 401 unauthorized: " + err.Error()}
	}
	t := g.byKey[key]
	if t == nil {
		g.stats.authFailures.Inc()
		return nil, &cluster.ServerError{Msg: "gateway: 401 unauthorized: unknown api key " + redactKey(key)}
	}
	if ok, retry := t.bucket.take(1); !ok {
		g.stats.ratelimited.Inc()
		t.stats.ratelimited.Inc()
		return nil, &cluster.ServerError{
			Msg: "gateway: 429 rate limited: tenant " + t.cfg.Name + " over rate, retry after " + retry.String(),
		}
	}
	if g.maxInflight > 0 && g.inflight.Load() >= g.maxInflight {
		g.stats.shed.Inc()
		t.stats.shed.Inc()
		return nil, &cluster.ServerError{Msg: "gateway: 503 shed: server at max in-flight frames"}
	}
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	g.stats.admitted.Inc()
	t.stats.admitted.Inc()
	start := time.Now()
	resp, err := g.inner.Handle(ctx, inner)
	dur := time.Since(start)
	if err != nil {
		g.stats.batchErrors.Inc()
		t.stats.batchErrors.Inc()
		t.stats.lat.ObserveError()
		return nil, err
	}
	g.stats.completed.Inc()
	t.stats.completed.Inc()
	t.stats.lat.Observe(dur)
	return resp, nil
}
