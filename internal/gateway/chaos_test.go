// Chaos acceptance for the multi-tenant gateway. External test package:
// core imports gateway, so driving the full system from here needs
// gateway_test to break the cycle.
package gateway_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"lsdgnn/internal/cluster"
	"lsdgnn/internal/core"
	"lsdgnn/internal/gateway"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/pipeline"
	"lsdgnn/internal/sampler"
)

// TestChaosGatewayFairnessUnderFaults is the gateway's headline acceptance
// test: with 5% injected faults and a greedy tenant hammering far past its
// contract, the light tenant must get byte-identical results to an
// unloaded fault-free run, never miss its SLO, and never be shed — all of
// the overload lands on the greedy tenant's rate-limit and shed counters.
func TestChaosGatewayFairnessUnderFaults(t *testing.T) {
	g := graph.Generate(graph.GenConfig{NumNodes: 2000, AvgDegree: 8, AttrLen: 8, Seed: 11, PowerLaw: true})
	sampling := sampler.Config{Fanouts: []int{4, 3}, NegativeRate: 2, Method: sampler.Streaming, FetchAttrs: true, Seed: 11}
	base := core.Options{
		Graph:    g,
		Servers:  4,
		Replicas: 2,
		Sampling: sampling,
		Pipeline: &pipeline.Config{},
		Seed:     11,
	}

	// Reference run: same graph, same sampling, no faults, no contention.
	ref, err := core.NewSystem(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const lightBatches = 6
	src := ref.BatchSource(8, 21)
	batches := make([][]graph.NodeID, lightBatches)
	want := make([]*sampler.Result, lightBatches)
	for i := range batches {
		batches[i] = src.Next()
		want[i], err = ref.SamplePipelined(ctx, batches[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	// Chaos run: 5% injected faults, a greedy tenant at many times any
	// sane rate, and a tight queue so its excess sheds.
	chaos := base
	chaos.Faults = &cluster.FaultSpec{ErrRate: 0.05}
	chaos.Gateway = &gateway.Config{
		Tenants: []gateway.TenantConfig{
			{Name: "light", Key: "light-key", Weight: 4, SLO: 5 * time.Second},
			{Name: "heavy", Key: "heavy-key", Weight: 1, Rate: 100, Burst: 32, SLO: 5 * time.Second},
		},
		QueueDepth:  4,
		MaxInflight: 2,
	}
	sys, err := core.NewSystem(chaos)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Greedy tenant: hammer batches from several goroutines, ignoring
	// rejections — the gateway's job is to contain this.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hsrc := sys.BatchSource(16, 99)
	var hmu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hmu.Lock()
				roots := hsrc.Next()
				hmu.Unlock()
				_, err := sys.SampleAs(ctx, "heavy-key", roots)
				if err == nil {
					continue
				}
				_, limited := gateway.AsRateLimited(err)
				_, shed := gateway.AsShed(err)
				var pe *cluster.PartialError
				var pp *pipeline.PartialError
				if !limited && !shed && !errors.As(err, &pe) && !errors.As(err, &pp) {
					t.Errorf("heavy tenant: unexpected error class: %v", err)
					return
				}
			}
		}()
	}

	// Light tenant: the same batches as the reference run, sequentially,
	// while the greedy tenant saturates the path.
	for i, roots := range batches {
		got, err := sys.SampleAs(ctx, "light-key", roots)
		if err != nil {
			var pe *cluster.PartialError
			var pp *pipeline.PartialError
			if !errors.As(err, &pe) && !errors.As(err, &pp) {
				t.Fatalf("light batch %d: %v", i, err)
			}
		}
		if got == nil {
			t.Fatalf("light batch %d: no result", i)
		}
		if !reflect.DeepEqual(got.Roots, want[i].Roots) ||
			!reflect.DeepEqual(got.Hops, want[i].Hops) ||
			!reflect.DeepEqual(got.Negatives, want[i].Negatives) ||
			!reflect.DeepEqual(got.Attrs, want[i].Attrs) {
			t.Fatalf("light batch %d diverged from unloaded fault-free run", i)
		}
	}
	close(stop)
	wg.Wait()

	// Fairness ledger: the light tenant was never shed or rate limited and
	// never missed its objective; the heavy tenant absorbed the overload.
	light := sys.Gateway.Tenant("light")
	heavy := sys.Gateway.Tenant("heavy")
	if light.Shed() != 0 || light.RateLimited() != 0 {
		t.Fatalf("light tenant punished: shed=%d ratelimited=%d", light.Shed(), light.RateLimited())
	}
	if snap := sys.Gateway.TenantSLO("light").Snapshot(); snap.Bad != 0 || snap.Breach {
		t.Fatalf("light tenant SLO breached: %+v", snap)
	}
	if heavy.Shed()+heavy.RateLimited() == 0 {
		t.Fatal("greedy tenant was never contained (no sheds, no rate limits)")
	}
}
