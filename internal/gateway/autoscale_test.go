package gateway

import (
	"strings"
	"testing"

	"lsdgnn/internal/cost"
	"lsdgnn/internal/faas"
	"lsdgnn/internal/perfmodel"
	"lsdgnn/internal/workload"
)

// fakePool is an EnginePool with a fixed build size.
type fakePool struct {
	active, built int
}

func (p *fakePool) Active() int { return p.active }
func (p *fakePool) SetActive(n int) int {
	if n < 1 {
		n = 1
	}
	if n > p.built {
		n = p.built
	}
	p.active = n
	return p.active
}

func testAutoscaler(t *testing.T, pool *fakePool, min, max int) (*Autoscaler, float64) {
	t.Helper()
	model, err := cost.Fit(cost.PriceTable())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := workload.DatasetByName("ss")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAutoscaler(AutoscaleConfig{
		Min: min, Max: max,
		Machine:  faas.PoCMachine(),
		Workload: perfmodel.Derive(ds, workload.DefaultSampling(), 4),
		Cost:     model,
	}, pool)
	if err != nil {
		t.Fatal(err)
	}
	per := perfmodel.Predict(a.cfg.Machine, a.cfg.Workload).RootsPerSecond
	if per <= 0 {
		t.Fatalf("per-engine capacity = %v, model broken", per)
	}
	return a, per
}

func TestAutoscalerScaleUpDown(t *testing.T) {
	pool := &fakePool{active: 2, built: 6}
	a, per := testAutoscaler(t, pool, 1, 6)
	var s Stats
	a.AttachStats(&s)

	// Offered load needing ~4 engines at the 0.8 high-water mark.
	d := a.Evaluate(per * 3.0)
	if d.Reason != "scale up" || d.After <= d.Before || pool.active != d.After {
		t.Fatalf("under load: %+v", d)
	}
	if d.After != 4 {
		t.Fatalf("after = %d, want 4 (ceil(3.0/0.8))", d.After)
	}
	if d.EnginePrice <= 0 || d.PerfPerDollar <= 0 {
		t.Fatalf("cost side missing: %+v", d)
	}
	if s.StatsSnapshot().Layer != "gateway" {
		t.Fatal("stats layer wrong")
	}

	// Mild slack inside the hysteresis band: hold, don't flap.
	d = a.Evaluate(per * 2.5)
	if d.Reason != "hold" || d.After != 4 {
		t.Fatalf("hysteresis band: %+v", d)
	}

	// Load collapses well below LowWater: drain back down.
	d = a.Evaluate(per * 0.4)
	if d.Reason != "scale down" || d.After != 1 {
		t.Fatalf("after collapse: %+v", d)
	}

	// The decision renders as a one-line report.
	if str := d.String(); !strings.Contains(str, "roots/s per $/hr") {
		t.Fatalf("Decision.String() = %q", str)
	}
}

func TestAutoscalerBounds(t *testing.T) {
	pool := &fakePool{active: 2, built: 8}
	a, per := testAutoscaler(t, pool, 2, 4)

	// Demand for far more than Max clamps at Max.
	if d := a.Evaluate(per * 100); d.After != 4 {
		t.Fatalf("max clamp: %+v", d)
	}
	// Zero demand clamps at Min.
	if d := a.Evaluate(0); d.After != 2 {
		t.Fatalf("min clamp: %+v", d)
	}
}

func TestAutoscalerNeedsPool(t *testing.T) {
	if _, err := NewAutoscaler(AutoscaleConfig{}, nil); err == nil {
		t.Fatal("nil pool accepted")
	}
}
