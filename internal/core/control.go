package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/qrch"
	"lsdgnn/internal/riscv"
)

// Control-plane integration: the RISC-V controller drives an AxE engine by
// pushing 32-byte command records (8 words) through a QRCH queue. Root node
// IDs live in the shared memory (Table 10's 8MB×2 shared RAM, modeled by a
// riscv.RAM window); sampled node IDs are written back behind the input
// buffer, and a two-word response (txn, count) lands in the response queue.

// Controller is an assembled control plane: RISC-V hart + bus + QRCH hub
// with an AxE engine endpoint.
type Controller struct {
	CPU    *riscv.CPU
	Bus    *riscv.SystemBus
	Hub    *qrch.Hub
	Shared *riscv.RAM
	Engine *axe.Engine

	imem *riscv.RAM
}

// Memory map for the controller.
const (
	IMemBase   = 0x0000_0000
	IMemSize   = 512 << 10
	SharedBase = 0x2000_0000
	SharedSize = 8 << 20
	// EngineQueue is the QRCH queue the AxE listens on.
	EngineQueue = 0
)

// NewController wires a CPU, shared memory and engine together.
func NewController(e *axe.Engine) (*Controller, error) {
	bus := &riscv.SystemBus{}
	imem := riscv.NewRAM(IMemSize)
	shared := riscv.NewRAM(SharedSize)
	if err := bus.Map(IMemBase, IMemSize, imem); err != nil {
		return nil, err
	}
	if err := bus.Map(SharedBase, SharedSize, shared); err != nil {
		return nil, err
	}
	cpu := riscv.NewCPU(bus)
	hub := qrch.NewHub()
	ctl := &Controller{CPU: cpu, Bus: bus, Hub: hub, Shared: shared, Engine: e, imem: imem}
	if err := hub.Attach(EngineQueue, &qrch.Endpoint{
		WordsPerCommand: axe.CommandBytes / 4,
		ResponseLatency: 50,
		Handle:          ctl.handleCommand,
	}); err != nil {
		return nil, err
	}
	cpu.Custom = hub.CustomFn()
	return ctl, nil
}

// LoadProgram assembles source into instruction memory and resets the CPU.
func (c *Controller) LoadProgram(source string) error {
	prog, err := riscv.Assemble(source, IMemBase)
	if err != nil {
		return err
	}
	img := prog.Bytes()
	if len(img) > len(c.imem.Data) {
		return fmt.Errorf("core: program of %d bytes exceeds %d-byte I-MEM", len(img), len(c.imem.Data))
	}
	copy(c.imem.Data, img)
	c.CPU.Reset(IMemBase)
	return nil
}

// handleCommand decodes and executes one AxE command record.
func (c *Controller) handleCommand(words []uint32) []uint32 {
	raw := make([]byte, axe.CommandBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint32(raw[i*4:], w)
	}
	cmd, err := axe.DecodeCommand(raw)
	if err != nil {
		return []uint32{0xFFFF_FFFF, 0}
	}
	resp := c.Execute(cmd)
	return []uint32{uint32(resp.Txn), uint32(resp.Value)}
}

// Execute runs one command against the engine, using shared memory for
// buffers. Returns the response record.
func (c *Controller) Execute(cmd axe.Command) axe.Response {
	fail := func() axe.Response { return axe.Response{Txn: cmd.Txn, Status: 1} }
	switch cmd.Op {
	case axe.OpNop:
		return axe.Response{Txn: cmd.Txn}
	case axe.OpSetCSR:
		c.Engine.CSRs().Write(int(cmd.Arg0), cmd.Arg1)
		return axe.Response{Txn: cmd.Txn}
	case axe.OpReadCSR:
		return axe.Response{Txn: cmd.Txn, Value: uint64(c.Engine.CSRs().Read(int(cmd.Arg0)))}
	case axe.OpSampleNHop:
		roots, ok := c.readRoots(cmd.Arg2, cmd.Arg3)
		if !ok {
			return fail()
		}
		res, _ := c.Engine.RunBatch(roots)
		// Write sampled IDs (all hops, flattened) behind the input buffer.
		out := cmd.Arg2 + cmd.Arg3*8
		n := uint64(0)
		for _, hop := range res.Hops {
			for _, v := range hop {
				if !c.writeWord64(out+n*8, uint64(v)) {
					return fail()
				}
				n++
			}
		}
		return axe.Response{Txn: cmd.Txn, Value: n}
	case axe.OpReadNodeAttr:
		roots, ok := c.readRoots(cmd.Arg2, cmd.Arg3)
		if !ok {
			return fail()
		}
		out := cmd.Arg2 + cmd.Arg3*8
		var buf []float32
		n := uint64(0)
		for _, v := range roots {
			buf = c.Engine.Attr(buf[:0], v)
			for _, f := range buf {
				if !c.writeWord32(out+n*4, math.Float32bits(f)) {
					return fail()
				}
				n++
			}
		}
		return axe.Response{Txn: cmd.Txn, Value: n}
	case axe.OpReadEdgeAttr:
		// Node-pair edge weights: a deterministic hash of (src,dst), the
		// procedural stand-in for stored edge attributes.
		pairs, ok := c.readRoots(cmd.Arg2, cmd.Arg3*2)
		if !ok || len(pairs)%2 != 0 {
			return fail()
		}
		out := cmd.Arg2 + cmd.Arg3*2*8
		n := uint64(0)
		for i := 0; i < len(pairs); i += 2 {
			w := edgeWeight(pairs[i], pairs[i+1])
			if !c.writeWord32(out+n*4, math.Float32bits(w)) {
				return fail()
			}
			n++
		}
		return axe.Response{Txn: cmd.Txn, Value: n}
	case axe.OpNegativeSample:
		roots, ok := c.readRoots(cmd.Arg2, cmd.Arg3)
		if !ok {
			return fail()
		}
		out := cmd.Arg2 + cmd.Arg3*8
		n := uint64(0)
		// Negatives are uniform LCG draws seeded by the command txn.
		seed := cmd.Txn | 1
		nodes := uint64(c.Engine.NumNodes())
		for range roots {
			for i := uint32(0); i < cmd.Arg1; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				if !c.writeWord64(out+n*8, seed%nodes) {
					return fail()
				}
				n++
			}
		}
		return axe.Response{Txn: cmd.Txn, Value: n}
	default:
		return fail()
	}
}

func (c *Controller) readRoots(addr, count uint64) ([]graph.NodeID, bool) {
	if addr < SharedBase {
		return nil, false
	}
	off := addr - SharedBase
	if off+count*8 > SharedSize {
		return nil, false
	}
	roots := make([]graph.NodeID, count)
	for i := range roots {
		roots[i] = graph.NodeID(binary.LittleEndian.Uint64(c.Shared.Data[off+uint64(i)*8:]))
	}
	return roots, true
}

func (c *Controller) writeWord64(addr, v uint64) bool {
	if addr < SharedBase {
		return false
	}
	off := addr - SharedBase
	if off+8 > SharedSize {
		return false
	}
	binary.LittleEndian.PutUint64(c.Shared.Data[off:], v)
	return true
}

func (c *Controller) writeWord32(addr uint64, v uint32) bool {
	if addr < SharedBase {
		return false
	}
	off := addr - SharedBase
	if off+4 > SharedSize {
		return false
	}
	binary.LittleEndian.PutUint32(c.Shared.Data[off:], v)
	return true
}

// edgeWeight derives a deterministic [0,1) weight from a node pair.
func edgeWeight(src, dst graph.NodeID) float32 {
	h := (uint64(src)*0x9e3779b97f4a7c15 ^ uint64(dst)) * 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return float32(h>>40) / float32(1<<24)
}
