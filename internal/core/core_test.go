package core

import (
	"context"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/cluster"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/workload"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	g := graph.Generate(graph.GenConfig{NumNodes: 2000, AvgDegree: 8, AttrLen: 8, Seed: 3, PowerLaw: true})
	sys, err := NewSystem(Options{Graph: g, Servers: 4, Seed: 3,
		Sampling: sampler.Config{Fanouts: []int{4, 3}, NegativeRate: 2, Method: sampler.Streaming, FetchAttrs: true, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{Servers: 0}); err == nil {
		t.Fatal("0 servers accepted")
	}
	if _, err := NewSystem(Options{Servers: 1}); err == nil {
		t.Fatal("no graph and no dataset accepted")
	}
}

func TestNewSystemFromDataset(t *testing.T) {
	ds, _ := workload.DatasetByName("ss")
	sys, err := NewSystem(Options{Dataset: ds, Servers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Graph.NumNodes() != ds.SimNodes {
		t.Fatal("dataset graph not built")
	}
	// Defaults applied.
	if len(sys.Sampling.Fanouts) != 2 || sys.Sampling.Fanouts[0] != 10 {
		t.Fatalf("default sampling = %+v", sys.Sampling)
	}
	if len(sys.Engines) != 2 || len(sys.Servers) != 2 {
		t.Fatal("per-partition components missing")
	}
}

func TestSoftwareAndAcceleratedAgree(t *testing.T) {
	sys := testSystem(t)
	roots := sys.BatchSource(8, 1).Next()
	sw, err := sys.SampleSoftware(context.Background(), roots)
	if err != nil {
		t.Fatal(err)
	}
	hw, st, err := sys.Sample(context.Background(), roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Hops[0]) != len(hw.Hops[0]) || len(sw.Hops[1]) != len(hw.Hops[1]) {
		t.Fatal("layouts differ")
	}
	if len(sw.Attrs) != len(hw.Attrs) {
		t.Fatal("attr layouts differ")
	}
	if st.SimTime <= 0 {
		t.Fatal("no hardware timing")
	}
	// Both sample genuine neighborhoods of the same graph.
	for i, p := range roots {
		ok := map[graph.NodeID]bool{p: true}
		for _, u := range sys.Graph.Neighbors(p) {
			ok[u] = true
		}
		for _, c := range hw.Hops[0][i*4 : (i+1)*4] {
			if !ok[c] {
				t.Fatalf("accelerated child %d of %d invalid", c, p)
			}
		}
		for _, c := range sw.Hops[0][i*4 : (i+1)*4] {
			if !ok[c] {
				t.Fatalf("software child %d of %d invalid", c, p)
			}
		}
	}
}

func TestControllerCSRCommands(t *testing.T) {
	sys := testSystem(t)
	ctl, err := NewController(sys.Engines[0])
	if err != nil {
		t.Fatal(err)
	}
	resp := ctl.Execute(axe.Command{Op: axe.OpSetCSR, Arg0: axe.CSRFanout0, Arg1: 7, Txn: 1})
	if resp.Status != 0 {
		t.Fatal("set-csr failed")
	}
	resp = ctl.Execute(axe.Command{Op: axe.OpReadCSR, Arg0: axe.CSRFanout0, Txn: 2})
	if resp.Value != 7 {
		t.Fatalf("read-csr = %d", resp.Value)
	}
}

func TestControllerSampleCommand(t *testing.T) {
	sys := testSystem(t)
	ctl, err := NewController(sys.Engines[0])
	if err != nil {
		t.Fatal(err)
	}
	// Write 4 roots into shared memory, then execute a sample command.
	roots := []graph.NodeID{10, 20, 30, 40}
	base := uint64(SharedBase + 0x100)
	for i, v := range roots {
		if !ctl.writeWord64(base+uint64(i)*8, uint64(v)) {
			t.Fatal("shared write failed")
		}
	}
	resp := ctl.Execute(axe.Command{Op: axe.OpSampleNHop, Arg2: base, Arg3: 4, Txn: 5})
	if resp.Status != 0 {
		t.Fatal("sample command failed")
	}
	want := uint64(4*4 + 4*4*3) // hop1 + hop2 entries
	if resp.Value != want {
		t.Fatalf("sampled %d ids, want %d", resp.Value, want)
	}
	// The sampled IDs landed behind the input buffer and are valid nodes.
	out := base + 4*8
	for i := uint64(0); i < resp.Value; i++ {
		id, ok := ctl.readRoots(out+i*8, 1)
		if !ok || !sys.Graph.HasNode(id[0]) {
			t.Fatalf("output id %d invalid", i)
		}
	}
}

func TestControllerNegativeSample(t *testing.T) {
	sys := testSystem(t)
	ctl, _ := NewController(sys.Engines[0])
	base := uint64(SharedBase)
	ctl.writeWord64(base, 1)
	resp := ctl.Execute(axe.Command{Op: axe.OpNegativeSample, Arg1: 5, Arg2: base, Arg3: 1, Txn: 9})
	if resp.Status != 0 || resp.Value != 5 {
		t.Fatalf("negative sample: %+v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		id, ok := ctl.readRoots(base+8+i*8, 1)
		if !ok || !sys.Graph.HasNode(id[0]) {
			t.Fatal("negative id out of range")
		}
	}
}

func TestControllerBadAddresses(t *testing.T) {
	sys := testSystem(t)
	ctl, _ := NewController(sys.Engines[0])
	resp := ctl.Execute(axe.Command{Op: axe.OpSampleNHop, Arg2: 0x1000, Arg3: 4, Txn: 1})
	if resp.Status == 0 {
		t.Fatal("out-of-window buffer accepted")
	}
	resp = ctl.Execute(axe.Command{Op: axe.OpSampleNHop, Arg2: SharedBase + SharedSize - 8, Arg3: 100, Txn: 2})
	if resp.Status == 0 {
		t.Fatal("overflowing buffer accepted")
	}
}

// TestRISCVDrivesEngine is the full control-plane integration: an assembled
// RISC-V program writes roots to shared memory, pushes a 32-byte sample
// command through QRCH word by word, pops the response, and the test
// verifies the sampled IDs in shared memory.
func TestRISCVDrivesEngine(t *testing.T) {
	sys := testSystem(t)
	ctl, err := NewController(sys.Engines[0])
	if err != nil {
		t.Fatal(err)
	}
	// Command record: Op=OpSampleNHop(3) in byte 0; Arg2=0x20000100 (words
	// 2,3); Arg3=2 roots (words 4,5); Txn=0xAB (words 6,7).
	src := `
		# roots 15 and 25 into shared memory at 0x20000100
		li   t0, 0x20000100
		li   t1, 15
		sw   t1, 0(t0)
		sw   zero, 4(t0)
		li   t1, 25
		sw   t1, 8(t0)
		sw   zero, 12(t0)
		# push the 8-word command record to queue 0
		li   a0, 3            # word0: opcode OpSampleNHop
		li   a1, 0            # word1
		qpush 0, a0, a1
		li   a0, 0x20000100   # word2: Arg2 lo
		li   a1, 0            # word3: Arg2 hi
		qpush 0, a0, a1
		li   a0, 2            # word4: Arg3 lo (2 roots)
		li   a1, 0            # word5
		qpush 0, a0, a1
		li   a0, 0xAB         # word6: Txn lo
		li   a1, 0            # word7
		qpush 0, a0, a1
		# pop the 2-word response
		qpop a2, 0            # txn echo
		qpop a3, 0            # sampled-id count
		ebreak
	`
	if err := ctl.LoadProgram(src); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CPU.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	if ctl.CPU.X[12] != 0xAB {
		t.Fatalf("txn echo = %#x", ctl.CPU.X[12])
	}
	wantIDs := uint32(2*4 + 2*4*3)
	if ctl.CPU.X[13] != wantIDs {
		t.Fatalf("id count = %d, want %d", ctl.CPU.X[13], wantIDs)
	}
	// Verify the sampled IDs: children of root 15 come first.
	out := uint64(SharedBase + 0x100 + 2*8)
	ids, ok := ctl.readRoots(out, uint64(wantIDs))
	if !ok {
		t.Fatal("cannot read back results")
	}
	valid := map[graph.NodeID]bool{15: true}
	for _, u := range sys.Graph.Neighbors(15) {
		valid[u] = true
	}
	for _, c := range ids[:4] {
		if !valid[c] {
			t.Fatalf("sampled id %d is not a neighbor of root 15", c)
		}
	}
	if ctl.Hub.Handled() != 1 {
		t.Fatalf("hub handled %d commands", ctl.Hub.Handled())
	}
}

func TestPipelineModelFigure3(t *testing.T) {
	p := DefaultPipelineModel()
	train := p.SamplingShare(true)
	infer := p.SamplingShare(false)
	// Paper: 64% training, 88% inference. Allow ±10 points.
	if train < 0.54 || train > 0.80 {
		t.Fatalf("training sampling share = %.2f, paper 0.64", train)
	}
	if infer < 0.78 || infer > 0.96 {
		t.Fatalf("inference sampling share = %.2f, paper 0.88", infer)
	}
	if infer <= train {
		t.Fatal("inference must be more sampling-dominated than training")
	}
	// Storage gap ≈ 5-7 orders of magnitude.
	ratio := p.StorageRatio()
	if ratio < 1e5 || ratio > 1e8 {
		t.Fatalf("storage ratio = %.1e", ratio)
	}
}

func TestPipelineBreakdownSumsToOne(t *testing.T) {
	p := DefaultPipelineModel()
	st := p.StageSeconds(true)
	var sum float64
	for _, s := range st.Breakdown() {
		sum += s.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestLoadProgramTooBig(t *testing.T) {
	sys := testSystem(t)
	ctl, _ := NewController(sys.Engines[0])
	big := ""
	for i := 0; i < IMemSize/4+8; i++ {
		big += "nop\n"
	}
	if err := ctl.LoadProgram(big); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestControllerReadNodeAttr(t *testing.T) {
	sys := testSystem(t)
	ctl, _ := NewController(sys.Engines[0])
	base := uint64(SharedBase + 0x400)
	ids := []graph.NodeID{3, 9}
	for i, v := range ids {
		ctl.writeWord64(base+uint64(i)*8, uint64(v))
	}
	resp := ctl.Execute(axe.Command{Op: axe.OpReadNodeAttr, Arg2: base, Arg3: 2, Txn: 11})
	al := sys.Graph.AttrLen()
	if resp.Status != 0 || resp.Value != uint64(2*al) {
		t.Fatalf("read-node-attr: %+v", resp)
	}
	out := base + 2*8
	want := sys.Graph.Attr(nil, 3)
	for j, f := range want {
		off := out - SharedBase + uint64(j)*4
		got := math.Float32frombits(binary.LittleEndian.Uint32(ctl.Shared.Data[off:]))
		if got != f {
			t.Fatalf("attr %d = %v, want %v", j, got, f)
		}
	}
}

func TestControllerReadEdgeAttr(t *testing.T) {
	sys := testSystem(t)
	ctl, _ := NewController(sys.Engines[0])
	base := uint64(SharedBase + 0x800)
	pairs := []graph.NodeID{1, 2, 3, 4}
	for i, v := range pairs {
		ctl.writeWord64(base+uint64(i)*8, uint64(v))
	}
	resp := ctl.Execute(axe.Command{Op: axe.OpReadEdgeAttr, Arg2: base, Arg3: 2, Txn: 12})
	if resp.Status != 0 || resp.Value != 2 {
		t.Fatalf("read-edge-attr: %+v", resp)
	}
	out := base - SharedBase + 4*8
	w0 := math.Float32frombits(binary.LittleEndian.Uint32(ctl.Shared.Data[out:]))
	w1 := math.Float32frombits(binary.LittleEndian.Uint32(ctl.Shared.Data[out+4:]))
	if w0 < 0 || w0 >= 1 || w1 < 0 || w1 >= 1 {
		t.Fatalf("edge weights out of range: %v %v", w0, w1)
	}
	if w0 == w1 {
		t.Fatal("distinct pairs produced identical weights")
	}
	// Deterministic: re-running gives the same weights.
	resp2 := ctl.Execute(axe.Command{Op: axe.OpReadEdgeAttr, Arg2: base, Arg3: 2, Txn: 13})
	if resp2.Status != 0 {
		t.Fatal("rerun failed")
	}
	if w0 != math.Float32frombits(binary.LittleEndian.Uint32(ctl.Shared.Data[out:])) {
		t.Fatal("edge weights not deterministic")
	}
}

// TestSystemTracing checks the end-to-end hop breakdown: a software batch
// records batch/rpc/wire/server hops, an accelerated batch records
// dispatch/engine hops, and the registry exports them all.
func TestSystemTracing(t *testing.T) {
	sys := testSystem(t)
	src := sys.BatchSource(32, 7)
	if _, err := sys.SampleSoftware(context.Background(), src.Next()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Sample(context.Background(), src.Next()); err != nil {
		t.Fatal(err)
	}
	for _, hop := range []string{obs.HopBatch, obs.HopRPC, obs.HopWire, obs.HopServer, obs.HopDispatchWait, obs.HopEngine} {
		if sys.Obs.Hop(hop).Count == 0 {
			t.Fatalf("hop %q unrecorded; have %v", hop, sys.Obs.Hops())
		}
	}
	if _, _, ok := sys.Obs.LastTrace(); !ok {
		t.Fatal("no trace in span log")
	}
	var buf strings.Builder
	if _, err := sys.StatsRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"lsdgnn_obs_hops_server_seconds_bucket",
		"lsdgnn_obs_hops_engine_seconds_count",
		"lsdgnn_cluster_batch_latency_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry exposition missing %q", want)
		}
	}
}

// TestNewSystemLayoutBuild: WithLayout-mode assembly builds one server per
// layout endpoint plus listed spares, one engine per partition, and rejects
// layouts with unassigned endpoints or out-of-range spares.
func TestNewSystemLayoutBuild(t *testing.T) {
	g := graph.Generate(graph.GenConfig{NumNodes: 1000, AvgDegree: 6, AttrLen: 4, Seed: 5, PowerLaw: true})
	sys, err := NewSystem(Options{Graph: g, Servers: 2, Seed: 5,
		Layout: cluster.UniformLayout(2, 2), Spares: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 layout endpoints + 1 spare, but still 2 partitions of engines.
	if len(sys.Servers) != 5 {
		t.Fatalf("servers = %d, want 5", len(sys.Servers))
	}
	if len(sys.Engines) != 2 {
		t.Fatalf("engines = %d, want 2", len(sys.Engines))
	}
	if sys.Client.Layout() == nil || sys.Client.Layout().Epoch != 1 {
		t.Fatal("client not routing by the layout")
	}
	if _, err := sys.SampleSoftware(context.Background(), sys.BatchSource(8, 1).Next()); err != nil {
		t.Fatal(err)
	}
	// The layout stats layer is registered from the start.
	found := false
	for _, snap := range sys.StatsRegistry().Collect() {
		if snap.Layer == "cluster.layout" {
			found = true
		}
	}
	if !found {
		t.Fatal("cluster.layout layer not registered")
	}

	// A layout that skips endpoint 0 leaves a transport slot unassigned.
	gap := &cluster.Layout{Epoch: 1, Partitions: [][]cluster.LayoutEndpoint{
		{{ID: 1, State: cluster.EndpointServing}},
		{{ID: 2, State: cluster.EndpointServing}},
	}}
	if _, err := NewSystem(Options{Graph: g, Servers: 2, Seed: 5, Layout: gap}); err == nil || !strings.Contains(err.Error(), "unassigned") {
		t.Fatalf("gapped layout accepted: %v", err)
	}
	// A spare for a partition the system does not have is a config bug.
	if _, err := NewSystem(Options{Graph: g, Servers: 2, Seed: 5,
		Layout: cluster.UniformLayout(2, 2), Spares: []int{7}}); err == nil {
		t.Fatal("out-of-range spare accepted")
	}
}
