package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lsdgnn/internal/graph"
	"lsdgnn/internal/sampler"
)

func dispatchSystem(t *testing.T, servers int) *System {
	t.Helper()
	g := graph.Generate(graph.GenConfig{NumNodes: 2000, AvgDegree: 8, AttrLen: 8, Seed: 3, PowerLaw: true})
	sys, err := NewSystem(Options{Graph: g, Servers: servers, Seed: 3,
		Sampling: sampler.Config{Fanouts: []int{4, 3}, NegativeRate: 2, Method: sampler.Streaming, FetchAttrs: true, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDispatcherSpreadsAcrossEngines(t *testing.T) {
	sys := dispatchSystem(t, 4)
	src := sys.BatchSource(8, 1)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		roots := src.Next()
		wg.Add(1)
		go func(i int, roots []graph.NodeID) {
			defer wg.Done()
			_, _, errs[i] = sys.Sample(context.Background(), roots)
		}(i, roots)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	counts := sys.Dispatcher.Counts()
	busy, total := 0, int64(0)
	for _, c := range counts {
		if c > 0 {
			busy++
		}
		total += c
	}
	if total != 8 {
		t.Fatalf("dispatched %d of 8 batches: %v", total, counts)
	}
	if busy < 2 {
		t.Fatalf("work not distributed: only %d engine(s) used, counts %v", busy, counts)
	}
}

func TestDispatcherSequentialRoundRobins(t *testing.T) {
	sys := dispatchSystem(t, 3)
	src := sys.BatchSource(4, 2)
	for i := 0; i < 6; i++ {
		if _, _, err := sys.Sample(context.Background(), src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// With no concurrency every engine is idle at pick time, so the
	// round-robin tie-break must hand each engine exactly two batches.
	for i, c := range sys.Dispatcher.Counts() {
		if c != 2 {
			t.Fatalf("engine %d got %d batches, want 2: %v", i, c, sys.Dispatcher.Counts())
		}
	}
}

func TestDispatcherMatchesLegacyResult(t *testing.T) {
	sys := dispatchSystem(t, 2)
	roots := sys.BatchSource(6, 7).Next()
	legacy, _ := sys.Engines[0].RunBatch(roots)
	via, _, err := sys.Sample(context.Background(), roots)
	if err != nil {
		t.Fatal(err)
	}
	// Engines share the sampling seed, so placement must not change the
	// functional result.
	for h := range legacy.Hops {
		if len(via.Hops[h]) != len(legacy.Hops[h]) {
			t.Fatalf("hop %d layout differs", h)
		}
		for i := range legacy.Hops[h] {
			if via.Hops[h][i] != legacy.Hops[h][i] {
				t.Fatalf("hop %d sample %d differs between engines", h, i)
			}
		}
	}
}

func TestDispatcherCanceledContext(t *testing.T) {
	sys := dispatchSystem(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sys.Sample(ctx, sys.BatchSource(4, 1).Next()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestDispatcherQueueRespectsDeadline(t *testing.T) {
	g := graph.Generate(graph.GenConfig{NumNodes: 500, AvgDegree: 6, AttrLen: 4, Seed: 1, PowerLaw: true})
	sys, err := NewSystem(Options{Graph: g, Servers: 1, Seed: 1,
		Sampling: sampler.Config{Fanouts: []int{8, 8}, NegativeRate: 2, Method: sampler.Streaming, FetchAttrs: true, Seed: 1},
		Dispatch: DispatcherConfig{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the single worker slot so a second batch has to queue.
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		sys.Dispatcher.slots <- struct{}{}
		close(started)
		<-release
		<-sys.Dispatcher.slots
	}()
	<-started
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := sys.Sample(ctx, sys.BatchSource(4, 1).Next()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued batch err = %v, want DeadlineExceeded", err)
	}
	if sys.Dispatcher.Latency().Count() != 0 {
		t.Fatal("timed-out batch counted as success")
	}
}

func TestDispatcherBatchTimeoutConfig(t *testing.T) {
	engines := dispatchSystem(t, 2).Engines
	d, err := NewDispatcher(engines, DispatcherConfig{BatchTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	// A 1 ns per-batch budget expires before any engine run completes.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		_, _, err := d.Submit(context.Background(), []graph.NodeID{1, 2, 3, 4})
		if err == nil {
			continue // scheduler raced the timer; try again
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		return
	}
	t.Skip("timer never beat the engine; nothing to assert")
}

func TestDispatcherValidation(t *testing.T) {
	if _, err := NewDispatcher(nil, DispatcherConfig{}); err == nil {
		t.Fatal("empty engine set accepted")
	}
	sys := dispatchSystem(t, 1)
	if _, err := NewDispatcher(sys.Engines, DispatcherConfig{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestDispatcherStatsSnapshot(t *testing.T) {
	sys := dispatchSystem(t, 2)
	if _, _, err := sys.Sample(context.Background(), sys.BatchSource(4, 1).Next()); err != nil {
		t.Fatal(err)
	}
	snap := sys.Dispatcher.StatsSnapshot()
	if snap.Layer != "core.dispatcher" {
		t.Fatalf("layer = %q", snap.Layer)
	}
	if v, ok := snap.Get("batches"); !ok || v != 1 {
		t.Fatalf("batches = %v", v)
	}
	e0, _ := snap.Get("engine_0_batches")
	e1, _ := snap.Get("engine_1_batches")
	if e0+e1 != 1 {
		t.Fatalf("per-engine counts %v + %v", e0, e1)
	}
}

func TestSystemStatsRegistry(t *testing.T) {
	sys := dispatchSystem(t, 2)
	ctx := context.Background()
	roots := sys.BatchSource(6, 3).Next()
	if _, err := sys.SampleSoftware(ctx, roots); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Sample(ctx, roots); err != nil {
		t.Fatal(err)
	}
	layers := map[string]bool{}
	for _, snap := range sys.StatsRegistry().Collect() {
		layers[snap.Layer] = true
	}
	for _, want := range []string{"cluster.traffic", "cluster.batch", "core.dispatcher", "trace.access"} {
		if !layers[want] {
			t.Fatalf("layer %q missing from registry: %v", want, layers)
		}
	}
}

func TestSampleBackgroundContext(t *testing.T) {
	sys := dispatchSystem(t, 2)
	roots := sys.BatchSource(4, 5).Next()
	res, st, err := sys.Sample(context.Background(), roots)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || st.SimTime <= 0 {
		t.Fatal("accelerated sampling broken")
	}
}

func TestDispatcherAdmitRejects(t *testing.T) {
	sys := dispatchSystem(t, 2)
	sentinel := errors.New("tenant over budget")
	var admitMu sync.Mutex
	var admitted int64
	disp, err := NewDispatcher(sys.Engines, DispatcherConfig{
		Workers: 2,
		Admit: func(ctx context.Context, roots []graph.NodeID) error {
			if len(roots) > 4 {
				return sentinel
			}
			admitMu.Lock()
			admitted++
			admitMu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	big := sys.BatchSource(8, 1).Next()
	_, _, err = disp.Submit(context.Background(), big)
	if !errors.Is(err, sentinel) {
		t.Fatalf("rejection not returned verbatim: %v", err)
	}
	if disp.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", disp.Rejected())
	}
	if disp.Degraded() != 0 {
		t.Fatalf("rejection counted as degraded: %d", disp.Degraded())
	}
	// Rejections never touch the latency layer, so the batch series stays
	// at zero and the SLO never sees a miss.
	snap := disp.StatsSnapshot()
	if v, ok := snap.Get("batches"); !ok || v != 0 {
		t.Fatalf("rejected batch reached the latency layer: batches = %v", v)
	}
	if v, ok := snap.Get("rejected_batches"); !ok || v != 1 {
		t.Fatalf("rejected_batches = %v, want 1", v)
	}
	// No slot was consumed: both workers are still free, so two admitted
	// batches run concurrently without queueing.
	small := sys.BatchSource(4, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		roots := small.Next()
		wg.Add(1)
		go func(i int, roots []graph.NodeID) {
			defer wg.Done()
			_, _, errs[i] = disp.Submit(context.Background(), roots)
		}(i, roots)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	admitMu.Lock()
	defer admitMu.Unlock()
	if admitted != 2 {
		t.Fatalf("admit hook saw %d admitted batches, want 2", admitted)
	}
}

func TestDispatcherSetActive(t *testing.T) {
	sys := dispatchSystem(t, 3)
	disp := sys.Dispatcher
	if disp.Active() != 3 {
		t.Fatalf("active = %d, want 3", disp.Active())
	}
	// Clamps: never below 1, never above the built engine count.
	if got := disp.SetActive(0); got != 1 {
		t.Fatalf("SetActive(0) = %d, want 1", got)
	}
	if got := disp.SetActive(99); got != 3 {
		t.Fatalf("SetActive(99) = %d, want 3", got)
	}
	// With one active engine, every batch lands on engine 0.
	disp.SetActive(1)
	src := sys.BatchSource(4, 9)
	for i := 0; i < 4; i++ {
		if _, _, err := disp.Submit(context.Background(), src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	counts := disp.Counts()
	if counts[0] != 4 || counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("deactivated engines took work: %v", counts)
	}
	snap := disp.StatsSnapshot()
	if v, ok := snap.Get("active_engines"); !ok || v != 1 {
		t.Fatalf("active_engines = %v, want 1", v)
	}
}
