package core

import (
	"lsdgnn/internal/perfmodel"
	"lsdgnn/internal/trace"
	"lsdgnn/internal/workload"
)

// End-to-end application pipeline model (Figure 3): for the Table 3
// application (ls graph, graphSAGE-max, DSSM end model) it breaks one
// mini-batch's time into sampling, embedding, GNN-NN and end-model stages,
// for both training and inference, and compares the storage footprints of
// the graph versus the NN parameters.

// GPUModel is a first-order dense-compute model.
type GPUModel struct {
	// EffectiveFlops is sustained FP32 throughput (peak × utilization).
	EffectiveFlops float64
	// TrainMultiplier scales forward FLOPs for backward+optimizer.
	TrainMultiplier float64
	// KernelOverheadSec is fixed per-batch launch/transfer overhead.
	KernelOverheadSec float64
}

// DefaultGPUModel returns a V100 running mixed dense kernels at realistic
// utilization.
func DefaultGPUModel() GPUModel {
	return GPUModel{EffectiveFlops: 0.85e12, TrainMultiplier: 4.3, KernelOverheadSec: 350e-6}
}

// PipelineModel combines the calibrated CPU sampling model, a GPU model
// and the Table 3 application.
type PipelineModel struct {
	App workload.App
	CPU perfmodel.CPUModel
	GPU GPUModel
	// SamplingWorkers is the vCPU pool concurrently feeding one trainer
	// (Table 3: 5-server 120-worker instance).
	SamplingWorkers int
	// Partitions shards the graph for the sampling model.
	Partitions int
}

// DefaultPipelineModel returns the Table 3 configuration.
func DefaultPipelineModel() PipelineModel {
	return PipelineModel{
		App:             workload.DefaultApp(),
		CPU:             perfmodel.DefaultCPUModel(),
		GPU:             DefaultGPUModel(),
		SamplingWorkers: 120,
		Partitions:      5,
	}
}

// nnFlopsPerBatch estimates forward FLOPs of embedding + graphSAGE-max +
// DSSM for one mini-batch.
func (p PipelineModel) nnFlopsPerBatch() float64 {
	app := p.App
	spec := app.Sampling
	batch := float64(spec.BatchSize)
	attr := float64(app.Dataset.AttrLen)
	emb := float64(p.App.EmbeddingDim)
	hid := float64(p.App.HiddenDim)
	nodesPerRoot := float64(spec.AttrFetchesPerRoot())

	// Embedding projection: every fetched node attr → embedding.
	embFlops := batch * nodesPerRoot * 2 * attr * emb
	// graphSAGE layer 1 over root+hop1 targets, layer 2 over roots:
	// concat(2·emb)→hid matmuls per target node.
	f1 := float64(spec.Fanouts[0])
	l1Targets := batch * (1 + f1)
	l2Targets := batch
	sageFlops := (l1Targets + l2Targets) * 2 * (2 * emb) * hid
	// DSSM towers: two hid→hid towers per (root, negative) pair.
	pairs := batch * float64(1+spec.NegativeRate)
	dssmFlops := pairs * 2 * 2 * hid * hid
	return embFlops + sageFlops + dssmFlops
}

// StageSeconds returns per-batch stage times for training or inference.
func (p PipelineModel) StageSeconds(training bool) *trace.StageTimer {
	t := trace.NewStageTimer()
	spec := p.App.Sampling
	w := perfmodel.Derive(p.App.Dataset, spec, p.Partitions)
	perVCPU := p.CPU.RootsPerSecondPerVCPU(w)
	// The worker pool pipelines batches; effective sampling time per batch
	// is batch / (workers × per-vCPU rate).
	sampling := float64(spec.BatchSize) / (perVCPU * float64(p.SamplingWorkers))
	t.Add("sampling", sampling)

	flops := p.nnFlopsPerBatch()
	mult := 1.0
	if training {
		mult = p.GPU.TrainMultiplier
	}
	nn := flops*mult/p.GPU.EffectiveFlops + p.GPU.KernelOverheadSec
	// Split the dense time into the three NN stages by their FLOP shares
	// (embedding dominates; GNN-NN and end-model smaller).
	t.Add("embedding+NN", nn)
	return t
}

// SamplingShare returns sampling's fraction of end-to-end batch time —
// the headline Figure 3 numbers (≈64% training, ≈88% inference).
func (p PipelineModel) SamplingShare(training bool) float64 {
	return p.StageSeconds(training).Share("sampling")
}

// StorageRatio returns graph-storage bytes over NN parameter bytes — the
// "5 orders of magnitude" gap of Figure 3.
func (p PipelineModel) StorageRatio() float64 {
	graphBytes := float64(p.App.Dataset.FootprintBytes())
	attr := float64(p.App.Dataset.AttrLen)
	emb := float64(p.App.EmbeddingDim)
	hid := float64(p.App.HiddenDim)
	params := attr*emb + // embedding projection
		2*emb*hid + 2*hid*hid + // two SAGE layers
		2*hid*hid // DSSM towers
	return graphBytes / (params * 4)
}
