package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/stats"
)

// DispatcherConfig tunes batch scheduling across engines.
type DispatcherConfig struct {
	// Workers bounds how many batches run concurrently across all engines;
	// 0 defaults to 2× the engine count.
	Workers int
	// BatchTimeout is a per-batch deadline applied on top of the caller's
	// context; 0 disables it.
	BatchTimeout time.Duration
	// Tracer, when set, records per-batch queue wait and engine runtime as
	// dispatch/engine hops under the batch's trace ID.
	Tracer *obs.Tracer
	// SLO, when set, classifies every submitted batch against a latency
	// objective: good iff it completed within the threshold.
	SLO *stats.SLO
	// Admit, when set, gates every Submit before a worker slot or engine
	// is claimed. A non-nil error rejects the batch: Submit returns it
	// verbatim (typed errors like gateway.RateLimitError survive
	// errors.As) without consuming a slot, touching the SLO, or counting
	// the batch as degraded — rejections land on the separate
	// rejected_batches counter.
	Admit func(ctx context.Context, roots []graph.NodeID) error
}

// Dispatcher load-balances sampling batches across a set of AxE engines. It
// picks the engine with the fewest in-flight batches (round-robin between
// ties), bounds total concurrency with a worker pool, and applies an
// optional per-batch deadline. All engines share the same sampling seed, so
// results are layout-identical regardless of placement; only modeled timing
// differs.
type Dispatcher struct {
	engines []*axe.Engine
	cfg     DispatcherConfig
	slots   chan struct{}
	lat     *stats.Latency

	mu       sync.Mutex
	inflight []int64
	counts   []int64
	rr       int
	degraded int64
	rejected int64
	// active bounds pick() to the first active engines — the autoscaler's
	// knob. Deactivated engines finish their in-flight batches but take
	// no new ones.
	active int
}

// NewDispatcher builds a dispatcher over engines.
func NewDispatcher(engines []*axe.Engine, cfg DispatcherConfig) (*Dispatcher, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("core: dispatcher needs ≥1 engine")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2 * len(engines)
	}
	return &Dispatcher{
		engines:  engines,
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.Workers),
		lat:      stats.NewLatency("core.dispatcher"),
		inflight: make([]int64, len(engines)),
		counts:   make([]int64, len(engines)),
		active:   len(engines),
	}, nil
}

// pick selects the least-loaded active engine, rotating between ties so
// idle engines all receive work.
func (d *Dispatcher) pick() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	best, bestLoad := -1, int64(1<<62)
	n := d.active
	for i := 0; i < n; i++ {
		e := (d.rr + i) % n
		if d.inflight[e] < bestLoad {
			best, bestLoad = e, d.inflight[e]
		}
	}
	d.rr = (best + 1) % n
	d.inflight[best]++
	d.counts[best]++
	return best
}

func (d *Dispatcher) release(engine int) {
	d.mu.Lock()
	d.inflight[engine]--
	d.mu.Unlock()
}

// Submit runs one batch on the best available engine. It blocks while the
// worker pool is saturated and honors ctx throughout: cancellation while
// queued returns immediately; cancellation mid-run abandons the batch (the
// engine finishes it in the background and the slot is then reclaimed).
func (d *Dispatcher) Submit(ctx context.Context, roots []graph.NodeID) (*sampler.Result, axe.BatchStats, error) {
	tr := d.cfg.Tracer
	var id obs.TraceID
	if tr != nil {
		ctx, id = obs.EnsureTrace(ctx)
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		d.lat.ObserveError()
		d.cfg.SLO.Observe(false)
		return nil, axe.BatchStats{}, err
	}
	if d.cfg.Admit != nil {
		if err := d.cfg.Admit(ctx, roots); err != nil {
			// Rejected, not failed: no slot was held, no engine touched,
			// and the SLO only judges admitted work.
			d.mu.Lock()
			d.rejected++
			d.mu.Unlock()
			return nil, axe.BatchStats{}, err
		}
	}
	if d.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.BatchTimeout)
		defer cancel()
	}
	select {
	case d.slots <- struct{}{}:
	case <-ctx.Done():
		d.lat.ObserveError()
		d.cfg.SLO.ObserveLatency(time.Since(start), true)
		return nil, axe.BatchStats{}, ctx.Err()
	}
	engine := d.pick()
	// Queue wait: from submission until a worker slot and an engine are
	// both held.
	tr.Observe(id, obs.HopDispatchWait, start, time.Since(start))

	type outcome struct {
		res *sampler.Result
		st  axe.BatchStats
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			d.release(engine)
			<-d.slots
		}()
		estart := time.Now()
		res, st := d.engines[engine].RunBatch(roots)
		// Recorded even for abandoned batches: the engine really did the
		// work, and the histogram should show it.
		tr.Observe(id, obs.HopEngine, estart, time.Since(estart))
		done <- outcome{res, st}
	}()
	select {
	case out := <-done:
		dur := time.Since(start)
		d.lat.ObserveTrace(dur, uint64(id))
		d.cfg.SLO.ObserveLatency(dur, false)
		return out.res, out.st, nil
	case <-ctx.Done():
		d.lat.ObserveError()
		d.cfg.SLO.ObserveLatency(time.Since(start), true)
		return nil, axe.BatchStats{}, ctx.Err()
	}
}

// RecordDegraded notes one batch that completed with partial results
// (lost shards degraded to empty neighborhoods) instead of failing —
// System.SampleSoftware surfaces cluster.PartialError here so the
// scheduling layer's report shows how much of the served load was
// degraded.
func (d *Dispatcher) RecordDegraded() {
	d.mu.Lock()
	d.degraded++
	d.mu.Unlock()
}

// Degraded returns how many batches completed with partial results.
func (d *Dispatcher) Degraded() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// Rejected returns how many batches the Admit hook turned away.
func (d *Dispatcher) Rejected() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rejected
}

// Engines returns how many engines the dispatcher schedules over.
func (d *Dispatcher) Engines() int { return len(d.engines) }

// Active returns how many engines currently take new batches.
func (d *Dispatcher) Active() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// SetActive resizes the live engine set to n, clamped to [1, Engines()],
// and returns the value actually applied. Engines beyond the active prefix
// finish their in-flight batches but receive no new work — the autoscaler's
// scale-down is a drain, not an abort. Implements gateway.EnginePool.
func (d *Dispatcher) SetActive(n int) int {
	if n < 1 {
		n = 1
	}
	if n > len(d.engines) {
		n = len(d.engines)
	}
	d.mu.Lock()
	d.active = n
	if d.rr >= n {
		d.rr = 0
	}
	d.mu.Unlock()
	return n
}

// Inflight returns how many batches are running across all engines right
// now — the numerator of the dispatcher's occupancy signal.
func (d *Dispatcher) Inflight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var sum int64
	for _, v := range d.inflight {
		sum += v
	}
	return int(sum)
}

// Capacity returns the worker-pool bound (maximum concurrent batches).
func (d *Dispatcher) Capacity() int { return d.cfg.Workers }

// Counts returns the cumulative batches dispatched to each engine.
func (d *Dispatcher) Counts() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int64, len(d.counts))
	copy(out, d.counts)
	return out
}

// Latency exposes the dispatcher's batch latency recorder.
func (d *Dispatcher) Latency() *stats.Latency { return d.lat }

// StatsSnapshot implements stats.Source: batch latency plus the per-engine
// dispatch distribution under the "core.dispatcher" layer.
func (d *Dispatcher) StatsSnapshot() stats.Snapshot {
	snap := d.lat.StatsSnapshot()
	snap.Metrics = append(snap.Metrics, stats.Metric{
		Name:  "degraded_batches",
		Value: float64(d.Degraded()),
		Unit:  "batches",
	})
	snap.Metrics = append(snap.Metrics, stats.Metric{
		Name:  "rejected_batches",
		Value: float64(d.Rejected()),
		Unit:  "batches",
	})
	snap.Metrics = append(snap.Metrics, stats.Metric{
		Name:  "active_engines",
		Value: float64(d.Active()),
		Unit:  "engines",
	})
	for i, c := range d.Counts() {
		snap.Metrics = append(snap.Metrics, stats.Metric{
			Name:  fmt.Sprintf("engine_%d_batches", i),
			Value: float64(c),
			Unit:  "batches",
		})
	}
	return snap
}
