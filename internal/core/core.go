// Package core assembles the full LSD-GNN system — the paper's primary
// contribution as a deployable stack: a partitioned distributed graph
// store, per-node AxE access engines, the RISC-V/QRCH control plane, and
// the software sampling path used as the vCPU baseline. It also provides
// the end-to-end application pipeline model behind Figure 3.
package core

import (
	"context"
	"fmt"
	"time"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/cluster"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/stats"
	"lsdgnn/internal/trace"
	"lsdgnn/internal/workload"
)

// Options configures a System.
type Options struct {
	// Dataset selects a Table 2 dataset (scaled simulation size). Leave
	// Graph nil to build from the dataset.
	Dataset workload.Dataset
	// Graph overrides Dataset with a caller-provided graph.
	Graph *graph.Graph
	// Servers is the storage partition count (≥1).
	Servers int
	// Sampling configures the workload; zero value takes the Table 2
	// defaults.
	Sampling sampler.Config
	// Engine configures the per-node AxE; zero value takes the PoC
	// defaults.
	Engine axe.Config
	// Dispatch tunes how batches are load-balanced across engines.
	Dispatch DispatcherConfig
	// NetDelay injects a fixed per-call delay into the in-process
	// transport, for exercising deadline behavior without real sockets.
	NetDelay time.Duration
	Seed     int64
}

// System is an assembled LSD-GNN deployment.
type System struct {
	Graph      *graph.Graph
	Part       cluster.Partitioner
	Servers    []*cluster.Server
	Client     *cluster.Client
	Engines    []*axe.Engine
	Dispatcher *Dispatcher
	Sampling   sampler.Config
}

// NewSystem builds servers, a client, one AxE engine per partition, and a
// dispatcher that load-balances batches across the engines.
func NewSystem(opts Options) (*System, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("core: need ≥1 server, got %d", opts.Servers)
	}
	g := opts.Graph
	if g == nil {
		if opts.Dataset.Name == "" {
			return nil, fmt.Errorf("core: either Graph or Dataset must be set")
		}
		g = opts.Dataset.Build(opts.Seed)
	}
	sCfg := opts.Sampling
	if len(sCfg.Fanouts) == 0 {
		spec := workload.DefaultSampling()
		sCfg = sampler.Config{
			Fanouts:      spec.Fanouts,
			NegativeRate: spec.NegativeRate,
			Method:       sampler.Streaming,
			FetchAttrs:   spec.FetchAttrs,
			Seed:         opts.Seed,
		}
	}
	eCfg := opts.Engine
	if eCfg.Cores == 0 {
		eCfg = axe.DefaultConfig()
	}
	eCfg.Sampling = sCfg

	part := cluster.HashPartitioner{N: opts.Servers}
	sys := &System{Graph: g, Part: part, Sampling: sCfg}
	for i := 0; i < opts.Servers; i++ {
		sys.Servers = append(sys.Servers, cluster.NewServer(g, part, i))
		eng, err := axe.New(g, part, i, eCfg)
		if err != nil {
			return nil, err
		}
		sys.Engines = append(sys.Engines, eng)
	}
	var tr cluster.Transport = cluster.DirectTransport{Servers: sys.Servers}
	if opts.NetDelay > 0 {
		tr = cluster.DelayedTransport{Inner: tr, Delay: opts.NetDelay}
	}
	client, err := cluster.NewClient(tr, part, 0)
	if err != nil {
		return nil, err
	}
	sys.Client = client
	disp, err := NewDispatcher(sys.Engines, opts.Dispatch)
	if err != nil {
		return nil, err
	}
	sys.Dispatcher = disp
	return sys, nil
}

// Sample runs one accelerated batch through the dispatcher, which places it
// on the least-loaded AxE engine. The context bounds queueing and the run
// itself; on expiry the batch is abandoned and ctx's error returned.
func (s *System) Sample(ctx context.Context, roots []graph.NodeID) (*sampler.Result, axe.BatchStats, error) {
	return s.Dispatcher.Submit(ctx, roots)
}

// SampleSoftware runs the CPU (AliGraph-style) distributed sampling path.
func (s *System) SampleSoftware(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
	return s.Client.SampleBatch(ctx, roots, s.Sampling)
}

// SampleAccelerated runs the batch on an AxE engine.
//
// Deprecated: use Sample, which load-balances across all engines and
// honors a context. This shim keeps the old engine-0-style contract for
// existing callers.
func (s *System) SampleAccelerated(roots []graph.NodeID) (*sampler.Result, axe.BatchStats) {
	res, st, err := s.Sample(context.Background(), roots)
	if err != nil {
		// Only reachable when a per-batch timeout is configured; preserve
		// the legacy can't-fail contract with a direct engine run.
		return s.Engines[0].RunBatch(roots)
	}
	return res, st
}

// BatchSource returns a deterministic root generator for this system.
func (s *System) BatchSource(batchSize int, seed int64) *workload.BatchSource {
	return workload.NewBatchSource(s.Graph.NumNodes(), batchSize, seed)
}

// StatsRegistry assembles the unified metrics view of the system: client
// wire traffic, client batch latency, dispatcher placement/latency, and the
// per-class access profile merged across all partition servers.
func (s *System) StatsRegistry() *stats.Registry {
	reg := stats.NewRegistry()
	reg.Register(&s.Client.Traffic, s.Client.Batches, s.Dispatcher)
	servers := s.Servers
	reg.Register(stats.Func(func() stats.Snapshot {
		var structReq, structBytes, attrReq, attrBytes float64
		for _, srv := range servers {
			st := srv.Stats()
			structReq += float64(st.Requests(trace.AccessStructure))
			structBytes += float64(st.Bytes(trace.AccessStructure))
			attrReq += float64(st.Requests(trace.AccessAttribute))
			attrBytes += float64(st.Bytes(trace.AccessAttribute))
		}
		share := 0.0
		if structReq+attrReq > 0 {
			share = structReq / (structReq + attrReq)
		}
		return stats.Snapshot{Layer: "trace.access", Metrics: []stats.Metric{
			{Name: "structure_requests", Value: structReq, Unit: "req"},
			{Name: "structure_bytes", Value: structBytes, Unit: "bytes"},
			{Name: "attribute_requests", Value: attrReq, Unit: "req"},
			{Name: "attribute_bytes", Value: attrBytes, Unit: "bytes"},
			{Name: "structure_share", Value: share, Unit: "ratio"},
		}}
	}))
	return reg
}
