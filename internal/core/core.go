// Package core assembles the full LSD-GNN system — the paper's primary
// contribution as a deployable stack: a partitioned distributed graph
// store, per-node AxE access engines, the RISC-V/QRCH control plane, and
// the software sampling path used as the vCPU baseline. It also provides
// the end-to-end application pipeline model behind Figure 3.
package core

import (
	"fmt"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/cluster"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/workload"
)

// Options configures a System.
type Options struct {
	// Dataset selects a Table 2 dataset (scaled simulation size). Leave
	// Graph nil to build from the dataset.
	Dataset workload.Dataset
	// Graph overrides Dataset with a caller-provided graph.
	Graph *graph.Graph
	// Servers is the storage partition count (≥1).
	Servers int
	// Sampling configures the workload; zero value takes the Table 2
	// defaults.
	Sampling sampler.Config
	// Engine configures the per-node AxE; zero value takes the PoC
	// defaults.
	Engine axe.Config
	Seed   int64
}

// System is an assembled LSD-GNN deployment.
type System struct {
	Graph    *graph.Graph
	Part     cluster.Partitioner
	Servers  []*cluster.Server
	Client   *cluster.Client
	Engines  []*axe.Engine
	Sampling sampler.Config
}

// NewSystem builds servers, a client and one AxE engine per partition.
func NewSystem(opts Options) (*System, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("core: need ≥1 server, got %d", opts.Servers)
	}
	g := opts.Graph
	if g == nil {
		if opts.Dataset.Name == "" {
			return nil, fmt.Errorf("core: either Graph or Dataset must be set")
		}
		g = opts.Dataset.Build(opts.Seed)
	}
	sCfg := opts.Sampling
	if len(sCfg.Fanouts) == 0 {
		spec := workload.DefaultSampling()
		sCfg = sampler.Config{
			Fanouts:      spec.Fanouts,
			NegativeRate: spec.NegativeRate,
			Method:       sampler.Streaming,
			FetchAttrs:   spec.FetchAttrs,
			Seed:         opts.Seed,
		}
	}
	eCfg := opts.Engine
	if eCfg.Cores == 0 {
		eCfg = axe.DefaultConfig()
	}
	eCfg.Sampling = sCfg

	part := cluster.HashPartitioner{N: opts.Servers}
	sys := &System{Graph: g, Part: part, Sampling: sCfg}
	for i := 0; i < opts.Servers; i++ {
		sys.Servers = append(sys.Servers, cluster.NewServer(g, part, i))
		eng, err := axe.New(g, part, i, eCfg)
		if err != nil {
			return nil, err
		}
		sys.Engines = append(sys.Engines, eng)
	}
	client, err := cluster.NewClient(cluster.DirectTransport{Servers: sys.Servers}, part, 0)
	if err != nil {
		return nil, err
	}
	sys.Client = client
	return sys, nil
}

// SampleSoftware runs the CPU (AliGraph-style) distributed sampling path.
func (s *System) SampleSoftware(roots []graph.NodeID) (*sampler.Result, error) {
	return s.Client.SampleBatch(roots, s.Sampling)
}

// SampleAccelerated runs the batch on node 0's AxE engine, returning the
// functional result plus the hardware-model timing.
func (s *System) SampleAccelerated(roots []graph.NodeID) (*sampler.Result, axe.BatchStats) {
	return s.Engines[0].RunBatch(roots)
}

// BatchSource returns a deterministic root generator for this system.
func (s *System) BatchSource(batchSize int, seed int64) *workload.BatchSource {
	return workload.NewBatchSource(s.Graph.NumNodes(), batchSize, seed)
}
