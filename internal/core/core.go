// Package core assembles the full LSD-GNN system — the paper's primary
// contribution as a deployable stack: a partitioned distributed graph
// store, per-node AxE access engines, the RISC-V/QRCH control plane, and
// the software sampling path used as the vCPU baseline. It also provides
// the end-to-end application pipeline model behind Figure 3.
package core

import (
	"context"
	"fmt"
	"time"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/cluster"
	"lsdgnn/internal/gateway"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/pipeline"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/stats"
	"lsdgnn/internal/store"
	"lsdgnn/internal/trace"
	"lsdgnn/internal/workload"
)

// Options configures a System.
type Options struct {
	// Dataset selects a Table 2 dataset (scaled simulation size). Leave
	// Graph nil to build from the dataset.
	Dataset workload.Dataset
	// Graph overrides Dataset with a caller-provided graph.
	Graph *graph.Graph
	// Servers is the storage partition count (≥1).
	Servers int
	// Sampling configures the workload; zero value takes the Table 2
	// defaults.
	Sampling sampler.Config
	// Engine configures the per-node AxE; zero value takes the PoC
	// defaults.
	Engine axe.Config
	// Dispatch tunes how batches are load-balanced across engines.
	Dispatch DispatcherConfig
	// NetDelay injects a fixed per-call delay into the in-process
	// transport, for exercising deadline behavior without real sockets.
	NetDelay time.Duration
	// Replicas is the storage-tier replication factor: each partition is
	// served by this many servers (0 or 1 = no replication). Replicated
	// systems get a default resilience policy when Resilience is nil.
	Replicas int
	// Resilience configures the client-side retry/breaker/failover policy;
	// nil leaves the fail-fast path unless Replicas > 1 or Faults is set.
	// The replica map is filled in automatically from Replicas when unset.
	Resilience *cluster.ResilienceConfig
	// Faults, when set, wraps the transport with seeded fault injection so
	// the resilience path can be exercised (chaos testing).
	Faults *cluster.FaultSpec
	// Packing, when set, enables protocol-v2 MoF request packing + BDI
	// section compression on the client's storage RPCs, plus the
	// in-flight attribute coalescer (see cluster.PackingConfig).
	Packing *cluster.PackingConfig
	// Pipeline, when set, builds an out-of-order sampling executor (the
	// software AxE load unit) over the client; SamplePipelined then runs
	// batches through it. RootStreams is forced on the sampling config so
	// pipelined and synchronous paths stay byte-identical.
	Pipeline *pipeline.Config
	// Layout, when set, is the initial elastic partition layout: one
	// server is built per layout endpoint and the client routes by the
	// layout's epoch-versioned replica sets instead of a static
	// ReplicaMap. Implies a default resilience policy. Overrides Replicas.
	Layout *cluster.Layout
	// Spares lists partition indices, one per spare endpoint to build:
	// the spare servers hold the named partition's shard and sit on the
	// transport after every layout endpoint, but start outside the layout —
	// admit them later with Client.AddReplica or Client.MigratePartition.
	Spares []int
	// Gateway, when set, builds a multi-tenant serving gateway in front of
	// the dispatcher: per-tenant admission (api key → rate limit → fair
	// queue), SLO-driven shedding wired to the system's live backpressure,
	// and the SampleAs entry point. Pressure/Burn/SLOs/Tracer fields left
	// nil are wired to the system's own signals.
	Gateway *gateway.Config
	// EngineSpares builds this many extra AxE engines (round-robin over
	// the partitions) that start deactivated: the dispatcher schedules
	// over the active prefix only, and a gateway autoscaler can grow into
	// the spares with Dispatcher.SetActive.
	EngineSpares int
	// Tracing sizes the system tracer (span-ring capacity, span sampling
	// rate); the zero value takes the obs defaults.
	Tracing obs.TracerConfig
	// Store selects the storage substrate behind the partition servers.
	// The zero value (store.Memory) serves from the in-process graph — the
	// historical behavior. store.Disk bulk-loads the graph into a
	// persistent segment+WAL store at Store.Path on first use (reopening
	// it thereafter) and every partition server answers from it, paging
	// under Store.MemoryBudget instead of holding the graph in RAM.
	Store store.Config
	Seed  int64
}

// Default latency objectives for an assembled system: the accelerated
// Sample path and the software (distributed CPU) path. Thresholds are
// simulation-scale — wide enough that a healthy run stays inside budget,
// tight enough that injected chaos burns it.
const (
	DefaultSampleSLO        = 25 * time.Millisecond
	DefaultSoftwareBatchSLO = 50 * time.Millisecond
)

// System is an assembled LSD-GNN deployment.
type System struct {
	Graph *graph.Graph
	Part  cluster.Partitioner
	// Servers holds every storage endpoint: the first Partitions entries
	// are the primaries, each subsequent block of Partitions entries is a
	// full replica set (cluster.UniformReplicas layout) — or, when
	// Options.Layout was given, one server per layout endpoint. Spare
	// endpoints (Options.Spares) come last, outside the initial layout.
	Servers    []*cluster.Server
	Client     *cluster.Client
	Engines    []*axe.Engine
	Dispatcher *Dispatcher
	Sampling   sampler.Config
	// Faults is the injection hook when Options.Faults was set (nil
	// otherwise); tests and experiments use it to kill/revive servers.
	Faults *cluster.FaultyTransport
	// Obs is the system-wide hop tracer: every batch through Sample or
	// SampleSoftware gets a trace ID, and its per-hop timings (dispatch
	// wait, engine, rpc, wire, server) land here.
	Obs *obs.Tracer
	// SLOs tracks the system's latency objectives: "sample" (the
	// accelerated Dispatcher path) and "software_batch" (the distributed
	// CPU path, pipelined or synchronous), declared at construction so
	// their series exist at zero from the first scrape.
	SLOs *stats.SLOTracker
	// Pipeline is the out-of-order sampling executor when Options.Pipeline
	// was set (nil otherwise).
	Pipeline *pipeline.Executor
	// Gateway is the multi-tenant front door when Options.Gateway was set
	// (nil otherwise); SampleAs routes through it.
	Gateway *gateway.Gateway
	// Store is the storage backend the partition servers answer from:
	// store.InMemory over Graph by default, a persistent *store.DiskStore
	// when Options.Store selected the Disk backend. Closed by Close.
	Store store.Store
}

// NewSystem builds servers, a client, one AxE engine per partition, and a
// dispatcher that load-balances batches across the engines.
func NewSystem(opts Options) (*System, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("core: need ≥1 server, got %d", opts.Servers)
	}
	g := opts.Graph
	if g == nil {
		if opts.Dataset.Name == "" {
			return nil, fmt.Errorf("core: either Graph or Dataset must be set")
		}
		g = opts.Dataset.Build(opts.Seed)
	}
	sCfg := opts.Sampling
	if len(sCfg.Fanouts) == 0 {
		spec := workload.DefaultSampling()
		sCfg = sampler.Config{
			Fanouts:      spec.Fanouts,
			NegativeRate: spec.NegativeRate,
			Method:       sampler.Streaming,
			FetchAttrs:   spec.FetchAttrs,
			Seed:         opts.Seed,
		}
	}
	eCfg := opts.Engine
	if eCfg.Cores == 0 {
		eCfg = axe.DefaultConfig()
	}
	eCfg.Sampling = sCfg

	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	part := cluster.HashPartitioner{N: opts.Servers}
	sys := &System{
		Graph: g, Part: part, Sampling: sCfg,
		Obs:  obs.NewTracerWith(opts.Tracing),
		SLOs: stats.NewSLOTracker(),
	}
	sampleSLO := sys.SLOs.Objective(stats.Objective{Name: "sample", Threshold: DefaultSampleSLO})
	softSLO := sys.SLOs.Objective(stats.Objective{Name: "software_batch", Threshold: DefaultSoftwareBatchSLO})
	// The storage substrate: in-memory by default, a persistent
	// segment+WAL store when configured. Disk-backed servers answer from
	// the store (paging under its memory budget); the in-memory path keeps
	// serving straight from the shared graph object.
	backing, err := store.FromConfig(opts.Store, g)
	if err != nil {
		return nil, err
	}
	sys.Store = backing
	assembled := false
	defer func() {
		if !assembled {
			backing.Close()
		}
	}()
	newServer := func(p int) *cluster.Server {
		if b, ok := backing.(cluster.Backend); ok && opts.Store.Backend == store.Disk {
			return cluster.NewBackendServer(b, part, p)
		}
		return cluster.NewServer(g, part, p)
	}
	if opts.Layout != nil {
		// The layout names the endpoints: build one server per listed
		// endpoint holding its partition's shard, densely indexed so the
		// transport can reach every one of them.
		if err := opts.Layout.Validate(opts.Servers); err != nil {
			return nil, err
		}
		eps := opts.Layout.Endpoints()
		maxEp := -1
		for ep := range eps {
			if ep > maxEp {
				maxEp = ep
			}
		}
		for ep := 0; ep <= maxEp; ep++ {
			p, ok := eps[ep]
			if !ok {
				return nil, fmt.Errorf("core: layout leaves endpoint %d unassigned", ep)
			}
			sys.Servers = append(sys.Servers, newServer(p))
		}
		for i := 0; i < opts.Servers; i++ {
			eng, err := axe.New(g, part, i, eCfg)
			if err != nil {
				return nil, err
			}
			sys.Engines = append(sys.Engines, eng)
		}
	} else {
		for r := 0; r < opts.Replicas; r++ {
			for i := 0; i < opts.Servers; i++ {
				sys.Servers = append(sys.Servers, newServer(i))
				if r > 0 {
					continue
				}
				eng, err := axe.New(g, part, i, eCfg)
				if err != nil {
					return nil, err
				}
				sys.Engines = append(sys.Engines, eng)
			}
		}
	}
	// Spare endpoints ride the transport behind every layout endpoint,
	// holding a shard but taking no traffic until admitted.
	for _, p := range opts.Spares {
		if p < 0 || p >= opts.Servers {
			return nil, fmt.Errorf("core: spare endpoint's partition %d out of %d", p, opts.Servers)
		}
		sys.Servers = append(sys.Servers, newServer(p))
	}
	var tr cluster.Transport = cluster.DirectTransport{Servers: sys.Servers}
	if opts.NetDelay > 0 {
		tr = cluster.DelayedTransport{Inner: tr, Delay: opts.NetDelay}
	}
	if opts.Faults != nil {
		ft := cluster.NewFaultyTransport(tr, opts.Seed)
		ft.SetFaults(*opts.Faults)
		tr = ft
		sys.Faults = ft
	}
	// Replication, fault injection, or an elastic layout without an
	// explicit policy still gets retries + breakers: a replicated tier is
	// pointless without failover, and layout swaps route through it.
	resCfg := opts.Resilience
	if resCfg == nil && (opts.Replicas > 1 || opts.Faults != nil || opts.Layout != nil || len(opts.Spares) > 0) {
		d := cluster.DefaultResilienceConfig()
		resCfg = &d
	}
	copts := []cluster.ClientOption{cluster.WithTracer(sys.Obs), cluster.WithSLO(softSLO)}
	if opts.Packing != nil {
		copts = append(copts, cluster.WithPacking(*opts.Packing))
	}
	if resCfg != nil {
		cfg := *resCfg
		if cfg.Replicas == nil && opts.Replicas > 1 && opts.Layout == nil {
			cfg.Replicas = cluster.UniformReplicas(opts.Servers, opts.Replicas)
		}
		copts = append(copts, cluster.WithResilience(cfg))
	}
	if opts.Layout != nil {
		copts = append(copts, cluster.WithLayout(opts.Layout))
	}
	client, err := cluster.NewClientContext(context.Background(), tr, part, 0, copts...)
	if err != nil {
		return nil, err
	}
	sys.Client = client
	if opts.Dispatch.Tracer == nil {
		opts.Dispatch.Tracer = sys.Obs
	}
	if opts.Dispatch.SLO == nil {
		opts.Dispatch.SLO = sampleSLO
	}
	// Spare engines ride at the end of the engine list, outside the
	// dispatcher's active prefix until an autoscaler grows into them.
	if opts.EngineSpares < 0 {
		return nil, fmt.Errorf("core: negative engine spares %d", opts.EngineSpares)
	}
	baseEngines := len(sys.Engines)
	for i := 0; i < opts.EngineSpares; i++ {
		eng, err := axe.New(g, part, i%opts.Servers, eCfg)
		if err != nil {
			return nil, err
		}
		sys.Engines = append(sys.Engines, eng)
	}
	disp, err := NewDispatcher(sys.Engines, opts.Dispatch)
	if err != nil {
		return nil, err
	}
	disp.SetActive(baseEngines)
	sys.Dispatcher = disp
	if opts.Pipeline != nil {
		sys.Pipeline = pipeline.New(client, sCfg, *opts.Pipeline)
		sys.Pipeline.SetTracer(sys.Obs)
		sys.Pipeline.SetSLO(softSLO)
	}
	if opts.Gateway != nil {
		gcfg := *opts.Gateway
		if gcfg.SLOs == nil {
			gcfg.SLOs = sys.SLOs
		}
		if gcfg.Tracer == nil {
			gcfg.Tracer = sys.Obs
		}
		if gcfg.Pressure == nil {
			gcfg.Pressure = sys.pressure
		}
		if gcfg.Burn == nil {
			gcfg.Burn = softSLO.BurnFast
		}
		gw, err := gateway.New(gcfg, func(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
			if sys.Pipeline != nil {
				return sys.SamplePipelined(ctx, roots)
			}
			res, _, err := sys.Dispatcher.Submit(ctx, roots)
			return res, err
		})
		if err != nil {
			return nil, err
		}
		sys.Gateway = gw
	}
	assembled = true
	return sys, nil
}

// pressure is the gateway's backpressure signal: the fuller of the
// dispatcher's worker pool and the pipeline's out-of-order window, in
// [0, 1]. Shedding starts before either resource saturates.
func (s *System) pressure() float64 {
	p := 0.0
	if c := s.Dispatcher.Capacity(); c > 0 {
		p = float64(s.Dispatcher.Inflight()) / float64(c)
	}
	if s.Pipeline != nil {
		if occ := s.Pipeline.Occupancy(); occ > p {
			p = occ
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// SampleAs runs one batch through the multi-tenant gateway as the tenant
// identified by key: admission (auth → rate limit → shed check), the
// weighted-fair queue, then the system's best sampling path (pipelined
// when configured, accelerated otherwise). Typed rejections surface via
// errors.As: gateway.AuthError, gateway.RateLimitError,
// gateway.AdmissionError.
func (s *System) SampleAs(ctx context.Context, key string, roots []graph.NodeID) (*sampler.Result, error) {
	if s.Gateway == nil {
		return nil, fmt.Errorf("core: no gateway configured (set Options.Gateway)")
	}
	return s.Gateway.Sample(ctx, key, roots)
}

// Close releases background resources: the gateway's scheduler goroutine
// and the storage backend (WAL sync + segment unmap for a disk store).
func (s *System) Close() {
	if s.Gateway != nil {
		s.Gateway.Close()
	}
	if s.Store != nil {
		s.Store.Close()
	}
}

// Sample runs one accelerated batch through the dispatcher, which places it
// on the least-loaded AxE engine. The context bounds queueing and the run
// itself; on expiry the batch is abandoned and ctx's error returned.
func (s *System) Sample(ctx context.Context, roots []graph.NodeID) (*sampler.Result, axe.BatchStats, error) {
	return s.Dispatcher.Submit(ctx, roots)
}

// SampleSoftware runs the CPU (AliGraph-style) distributed sampling path.
// When the client is configured with PartialResults, a degraded batch
// comes back as (result, *cluster.PartialError): the result keeps its full
// layout and the dispatcher records the degradation; callers decide
// whether partial data is acceptable via cluster.AsPartial.
func (s *System) SampleSoftware(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
	res, err := s.Client.SampleBatch(ctx, roots, s.Sampling)
	if _, ok := cluster.AsPartial(err); ok {
		s.Dispatcher.RecordDegraded()
	}
	return res, err
}

// SamplePipelined runs one batch through the out-of-order executor (the
// software load unit). Falls back to SampleSoftware when no pipeline was
// configured — the result stays byte-identical when both paths use
// RootStreams. A *pipeline.PartialError marks per-root degradation; the
// result keeps its full layout and the dispatcher records it.
func (s *System) SamplePipelined(ctx context.Context, roots []graph.NodeID) (*sampler.Result, error) {
	if s.Pipeline == nil {
		return s.SampleSoftware(ctx, roots)
	}
	res, err := s.Pipeline.Sample(ctx, roots)
	if _, ok := pipeline.AsPartial(err); ok {
		s.Dispatcher.RecordDegraded()
	}
	return res, err
}

// BatchSource returns a deterministic root generator for this system.
func (s *System) BatchSource(batchSize int, seed int64) *workload.BatchSource {
	return workload.NewBatchSource(s.Graph.NumNodes(), batchSize, seed)
}

// StatsRegistry assembles the unified metrics view of the system: client
// wire traffic, client batch latency, resilience counters, dispatcher
// placement/latency, the per-hop trace histograms, and the per-class
// access profile merged across all partition servers.
func (s *System) StatsRegistry() *stats.Registry {
	reg := stats.NewRegistry()
	reg.Register(&s.Client.Traffic, s.Client.Batches, &s.Client.Res, &s.Client.Pack, &s.Client.Lay, s.Dispatcher, s.Obs, s.SLOs)
	if s.Pipeline != nil {
		reg.Register(s.Pipeline.Stats())
	}
	if s.Gateway != nil {
		reg.Register(s.Gateway.Sources()...)
	}
	// The storage tier: a disk-backed system exports its live cache/WAL
	// counters; the in-memory backend pre-registers the same series at
	// zero so the "store" namespace is stable across backends.
	if ds, ok := s.Store.(*store.DiskStore); ok {
		reg.Register(ds.Stats())
	} else {
		reg.PreRegister(&store.Stats{})
	}
	servers := s.Servers
	// One merged cluster.wire block: per-server counters summed, ratios
	// recomputed over the totals.
	reg.Register(stats.Func(func() stats.Snapshot {
		merged := stats.Snapshot{Layer: "cluster.wire"}
		sums := map[string]float64{}
		order := []string{"bytes_total", "bytes_in", "bytes_out", "frames_total", "packed_frames", "packed_requests"}
		for _, srv := range servers {
			for _, m := range srv.Wire().StatsSnapshot().Metrics {
				sums[m.Name] += m.Value
			}
		}
		for _, name := range order {
			unit := "req"
			if name[0] == 'b' {
				unit = "bytes"
			}
			merged.Metrics = append(merged.Metrics, stats.Metric{Name: name, Value: sums[name], Unit: unit})
		}
		packRatio := 1.0
		if sums["packed_frames"] > 0 {
			packRatio = sums["packed_requests"] / sums["packed_frames"]
		}
		merged.Metrics = append(merged.Metrics, stats.Metric{Name: "pack_ratio", Value: packRatio, Unit: "ratio"})
		return merged
	}))
	reg.Register(stats.Func(func() stats.Snapshot {
		var structReq, structBytes, attrReq, attrBytes float64
		for _, srv := range servers {
			st := srv.Stats()
			structReq += float64(st.Requests(trace.AccessStructure))
			structBytes += float64(st.Bytes(trace.AccessStructure))
			attrReq += float64(st.Requests(trace.AccessAttribute))
			attrBytes += float64(st.Bytes(trace.AccessAttribute))
		}
		share := 0.0
		if structReq+attrReq > 0 {
			share = structReq / (structReq + attrReq)
		}
		return stats.Snapshot{Layer: "trace.access", Metrics: []stats.Metric{
			{Name: "structure_requests", Value: structReq, Unit: "req"},
			{Name: "structure_bytes", Value: structBytes, Unit: "bytes"},
			{Name: "attribute_requests", Value: attrReq, Unit: "req"},
			{Name: "attribute_bytes", Value: attrBytes, Unit: "bytes"},
			{Name: "structure_share", Value: share, Unit: "ratio"},
		}}
	}))
	return reg
}
