// Benchmark harness: one testing.B target per paper table/figure (wrapping
// the experiment runners in quick mode) plus the ablation benches DESIGN.md
// calls out and microbenchmarks of the performance-critical primitives.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
package lsdgnn

import (
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"time"

	"lsdgnn/internal/axe"
	"lsdgnn/internal/cluster"
	"lsdgnn/internal/experiments"
	"lsdgnn/internal/gnn"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/mof"
	"lsdgnn/internal/pipeline"
	"lsdgnn/internal/qrch"
	"lsdgnn/internal/riscv"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/store"
)

func benchOpts() experiments.Options { return experiments.Options{Quick: true, Seed: 42} }

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one bench per table/figure ---

func BenchmarkFig2a(b *testing.B) { runExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B) { runExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B) { runExperiment(b, "fig2c") }
func BenchmarkFig2d(b *testing.B) { runExperiment(b, "fig2d") }
func BenchmarkFig2e(b *testing.B) { runExperiment(b, "fig2e") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig7(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkOoO(b *testing.B)   { runExperiment(b, "ooo") }
func BenchmarkStreamingSampling(b *testing.B) {
	// The cycle/structure half of the Tech-2 experiment; the accuracy half
	// (training) lives in the gnn tests.
	rng := rand.New(rand.NewSource(1))
	candidates := make([]graph.NodeID, 1000)
	for i := range candidates {
		candidates[i] = graph.NodeID(i)
	}
	var dst []graph.NodeID
	b.Run("reservoir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst, _ = sampler.SampleNeighbors(dst[:0], candidates, 10, sampler.Reservoir, rng)
		}
	})
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst, _ = sampler.SampleNeighbors(dst[:0], candidates, 10, sampler.Streaming, rng)
		}
	})
}
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { runExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { runExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { runExperiment(b, "fig21") }

// --- DESIGN.md ablations ---

func benchGraph() *graph.Graph {
	return graph.Generate(graph.GenConfig{NumNodes: 5000, AvgDegree: 10, AttrLen: 64, Seed: 7, PowerLaw: true})
}

func benchEngine(b *testing.B, mutate func(*axe.Config)) *axe.Engine {
	b.Helper()
	cfg := axe.DefaultConfig()
	cfg.Sampling.Fanouts = []int{4, 4}
	cfg.Sampling.NegativeRate = 2
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := axe.New(benchGraph(), cluster.HashPartitioner{N: 4}, 0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchRoots(n int) []graph.NodeID {
	rng := rand.New(rand.NewSource(3))
	roots := make([]graph.NodeID, n)
	for i := range roots {
		roots[i] = graph.NodeID(rng.Int63n(5000))
	}
	return roots
}

// BenchmarkAblationWindow sweeps the Tech-3 OoO window.
func BenchmarkAblationWindow(b *testing.B) {
	for _, win := range []int{1, 8, 64, 256} {
		win := win
		b.Run("w"+itoa(win), func(b *testing.B) {
			e := benchEngine(b, func(c *axe.Config) { c.Window = win })
			roots := benchRoots(32)
			var simRoots float64
			for i := 0; i < b.N; i++ {
				_, st := e.RunBatch(roots)
				simRoots = st.RootsPerSecond
			}
			b.ReportMetric(simRoots, "simroots/s")
		})
	}
}

// BenchmarkAblationCores sweeps the Equation 3 core sizing.
func BenchmarkAblationCores(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		cores := cores
		b.Run("c"+itoa(cores), func(b *testing.B) {
			e := benchEngine(b, func(c *axe.Config) { c.Cores = cores })
			roots := benchRoots(32)
			var simRoots float64
			for i := 0; i < b.N; i++ {
				_, st := e.RunBatch(roots)
				simRoots = st.RootsPerSecond
			}
			b.ReportMetric(simRoots, "simroots/s")
		})
	}
}

// BenchmarkAblationCache sweeps the Tech-4 coalescing-cache size.
func BenchmarkAblationCache(b *testing.B) {
	for _, size := range []int{0, 2 << 10, 8 << 10, 64 << 10} {
		size := size
		b.Run("cache"+itoa(size), func(b *testing.B) {
			e := benchEngine(b, func(c *axe.Config) { c.CacheBytes = size })
			roots := benchRoots(32)
			var hit float64
			for i := 0; i < b.N; i++ {
				_, st := e.RunBatch(roots)
				hit = st.CacheHitRate
			}
			b.ReportMetric(hit*100, "hit%")
		})
	}
}

// BenchmarkAblationPacking sweeps MoF requests-per-package utilization.
func BenchmarkAblationPacking(b *testing.B) {
	reqs := make([]mof.ReadRequest, 128)
	for i := range reqs {
		reqs[i] = mof.ReadRequest{Addr: uint64(i) * 640, Length: 16}
	}
	c := &mof.Codec{}
	for i := 0; i < b.N; i++ {
		frames, err := c.EncodeReadRequests(1, 2, 0, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range frames {
			if _, _, err := c.DecodeReadRequests(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- microbenchmarks of the hot primitives ---

func BenchmarkEngineBatch(b *testing.B) {
	e := benchEngine(b, nil)
	roots := benchRoots(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunBatch(roots)
	}
}

func BenchmarkSoftwareSampling(b *testing.B) {
	g := benchGraph()
	s := sampler.New(sampler.LocalStore{G: g}, sampler.Config{
		Fanouts: []int{10, 10}, NegativeRate: 10, Method: sampler.Streaming, FetchAttrs: true, Seed: 1,
	})
	roots := benchRoots(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Release puts the batch's region back in circulation — the
		// steady-state a serving loop reaches once each batch is shipped.
		s.SampleBatch(roots).Release()
	}
}

// BenchmarkDiskStoreSampling drives the software sampler over the
// persistent store at the operating point the storage tier exists for: a
// materialized dataset whose segment is >=4x the cache budget, so most
// reads page in from disk and the LRU is constantly evicting. The run
// aborts if resident cache bytes ever exceed the budget — the admission
// contract, enforced while benchmarking. The local and mmap variants
// bracket it: full-RAM serving above, OS-paged zero-copy below.
func BenchmarkDiskStoreSampling(b *testing.B) {
	const nodes = 20_000
	g := graph.Generate(graph.GenConfig{
		NumNodes: nodes, AvgDegree: 10, AttrLen: 64, Seed: 7,
		PowerLaw: true, Materialize: true,
	})
	cfg := sampler.Config{
		Fanouts: []int{10, 10}, NegativeRate: 10, Method: sampler.Streaming,
		FetchAttrs: true, Seed: 1,
	}
	rng := rand.New(rand.NewSource(3))
	roots := make([]graph.NodeID, 64)
	for i := range roots {
		roots[i] = graph.NodeID(rng.Int63n(nodes))
	}
	b.Run("local", func(b *testing.B) {
		s := sampler.New(sampler.LocalStore{G: g}, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleBatch(roots).Release()
		}
	})
	openDisk := func(b *testing.B, opts ...store.Option) *store.DiskStore {
		b.Helper()
		dir := b.TempDir()
		if err := store.Create(dir, g); err != nil {
			b.Fatal(err)
		}
		ds, err := store.Open(dir, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ds.Close() })
		return ds
	}
	b.Run("disk-budgeted", func(b *testing.B) {
		const budget = 3 << 19 // 1.5 MiB against a ~6.9 MiB segment
		st := &store.Stats{}
		ds := openDisk(b, store.WithMemoryBudget(budget), store.WithStats(st))
		if seg := ds.SegmentBytes(); seg < 4*budget {
			b.Fatalf("segment %d bytes is under 4x the %d-byte budget", seg, budget)
		}
		s := sampler.New(ds, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleBatch(roots).Release()
			if r := ds.Resident(); r > budget {
				b.Fatalf("resident %d bytes over the %d-byte budget", r, budget)
			}
		}
		hits, misses := st.CacheHits(), st.CacheMisses()
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
		}
	})
	b.Run("disk-mmap", func(b *testing.B) {
		ds := openDisk(b)
		s := sampler.New(ds, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleBatch(roots).Release()
		}
	})
}

// BenchmarkPipelineSampling measures the Tech-3 win in software: the same
// batch over a 200µs-RTT transport, synchronously (window 1 — each fetch
// blocks the next) versus through the full 256-deep out-of-order window.
// Per-root RNG streams keep both variants byte-identical.
func BenchmarkPipelineSampling(b *testing.B) {
	g := benchGraph()
	part := cluster.HashPartitioner{N: 4}
	servers := make([]*cluster.Server, 4)
	for i := range servers {
		servers[i] = cluster.NewServer(g, part, i)
	}
	tr := cluster.DelayedTransport{Inner: cluster.DirectTransport{Servers: servers}, Delay: 200 * time.Microsecond}
	client, err := cluster.NewClient(tr, part, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sampler.Config{Fanouts: []int{10, 10}, NegativeRate: 10, Method: sampler.Streaming, FetchAttrs: true, Seed: 1}
	roots := benchRoots(64)
	ctx := context.Background()
	for _, win := range []int{1, pipeline.DefaultWindow} {
		win := win
		b.Run("w"+itoa(win), func(b *testing.B) {
			ex := pipeline.New(client, cfg, pipeline.Config{Window: win})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ex.Sample(ctx, roots)
				if err != nil {
					b.Fatal(err)
				}
				res.Release()
			}
		})
	}
}

func BenchmarkDistributedSampling(b *testing.B) {
	g := benchGraph()
	part := cluster.HashPartitioner{N: 4}
	servers := make([]*cluster.Server, 4)
	for i := range servers {
		servers[i] = cluster.NewServer(g, part, i)
	}
	client, err := cluster.NewClient(cluster.DirectTransport{Servers: servers}, part, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sampler.Config{Fanouts: []int{10, 10}, NegativeRate: 10, Method: sampler.Streaming, FetchAttrs: true, Seed: 1}
	roots := benchRoots(64)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.SampleBatch(ctx, roots, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

// BenchmarkPackedFrameCodec measures the full protocol-v2 frame cost on
// one flush: encode a packed request (neighbor + attr subs), decode it
// server-side, encode the packed response, decode it client-side — the
// per-flush work the packer does between the sampler and the socket.
func BenchmarkPackedFrameCodec(b *testing.B) {
	subs := make([]cluster.PackedSubRequest, 48)
	for i := range subs {
		if i%6 == 5 {
			ids := make([]graph.NodeID, 128)
			for j := range ids {
				ids[j] = graph.NodeID(1_000_000 + i*128 + j)
			}
			subs[i] = cluster.PackedSubRequest{Op: cluster.OpGetAttrs, Attrs: cluster.AttrsRequest{IDs: ids}}
			continue
		}
		ids := make([]graph.NodeID, 64)
		for j := range ids {
			ids[j] = graph.NodeID(500_000 + i*64 + j)
		}
		subs[i] = cluster.PackedSubRequest{Op: cluster.OpGetNeighbors, Neighbors: cluster.NeighborsRequest{IDs: ids}}
	}
	resps := make([]cluster.PackedSubResponse, len(subs))
	for i, sub := range subs {
		resps[i].Op = sub.Op
		if sub.Op == cluster.OpGetNeighbors {
			lists := make([][]graph.NodeID, len(sub.Neighbors.IDs))
			for j := range lists {
				l := make([]graph.NodeID, 10)
				for k := range l {
					l[k] = graph.NodeID(700_000 + j*10 + k)
				}
				lists[j] = l
			}
			resps[i].Neighbors.Lists = lists
			continue
		}
		attrs := make([]float32, len(sub.Attrs.IDs)*64)
		for j := range attrs {
			attrs[j] = float32(j%31) * 0.5
		}
		resps[i].Attrs = cluster.AttrsResponse{AttrLen: 64, Attrs: attrs}
	}
	var codec mof.VecCodec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := cluster.EncodePackedRequest(subs, true, &codec)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := cluster.DecodePackedRequest(req, &codec); err != nil {
			b.Fatal(err)
		}
		resp := cluster.EncodePackedResponse(resps, true, &codec)
		out, err := cluster.DecodePackedResponse(resp, 0, &codec)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(subs) {
			b.Fatalf("%d of %d subs answered", len(out), len(subs))
		}
	}
}

// BenchmarkVecCodecU64s measures the section codec on a clustered node-ID
// vector — the Tech-2 sweet spot the wire path hits once per section.
func BenchmarkVecCodecU64s(b *testing.B) {
	vals := make([]uint64, 512)
	for i := range vals {
		vals[i] = 1_000_000 + uint64(i*3)
	}
	var codec mof.VecCodec
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := codec.AppendU64s(nil, vals)
		dec, _, err := codec.ReadU64s(enc)
		if err != nil {
			b.Fatal(err)
		}
		if len(dec) != len(vals) {
			b.Fatalf("%d of %d values decoded", len(dec), len(vals))
		}
	}
}

func BenchmarkBDICompress(b *testing.B) {
	src := make([]byte, 1024)
	for i := 0; i < 128; i++ {
		binary.LittleEndian.PutUint64(src[i*8:], 1_000_000+uint64(i*3))
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		enc := mof.BDICompress(src)
		if _, err := mof.BDIDecompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMoFFrameCodec(b *testing.B) {
	resps := make([]mof.ReadResponse, 64)
	for i := range resps {
		data := make([]byte, 512)
		resps[i] = mof.ReadResponse{Data: data}
	}
	c := &mof.Codec{CompressData: true}
	b.SetBytes(64 * 512)
	for i := 0; i < b.N; i++ {
		frames, err := c.EncodeReadResponses(1, 2, 0, resps)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range frames {
			if _, _, err := c.DecodeReadResponses(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRISCVExecution(b *testing.B) {
	bus := &riscv.SystemBus{}
	ram := riscv.NewRAM(64 << 10)
	if err := bus.Map(0, 64<<10, ram); err != nil {
		b.Fatal(err)
	}
	prog, err := riscv.Assemble(`
		li   a0, 0
		li   t0, 1
		li   t1, 2000
	loop:
		add  a0, a0, t0
		addi t0, t0, 1
		bge  t1, t0, loop
		ebreak
	`, 0)
	if err != nil {
		b.Fatal(err)
	}
	copy(ram.Data, prog.Bytes())
	cpu := riscv.NewCPU(bus)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		cpu.Reset(0)
		if err := cpu.Run(1 << 20); err != nil {
			b.Fatal(err)
		}
		instrs = cpu.Retired
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkQRCHInteraction(b *testing.B) {
	for _, c := range []qrch.Coupling{qrch.MMIO, qrch.ISAExt, qrch.QRCH} {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				r, err := qrch.MeasureInteraction(c)
				if err != nil {
					b.Fatal(err)
				}
				cycles = r.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := gnn.NewMat(128, 128)
	y := gnn.NewMat(128, 128)
	x.Randomize(rng)
	y.Randomize(rng)
	out := gnn.NewMat(128, 128)
	flops := 2.0 * 128 * 128 * 128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gnn.MatMul(out, x, y)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		graph.Generate(graph.GenConfig{NumNodes: 10000, AvgDegree: 10, AttrLen: 64, Seed: int64(i), PowerLaw: true})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
