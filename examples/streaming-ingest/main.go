// Streaming ingest: the dynamic-graph capability the paper credits
// AliGraph with (Section 2.4). An e-commerce event stream appends edges to
// a live graph while sampling keeps running; periodic compaction folds the
// delta back into the immutable CSR. New interactions become samplable
// immediately — no rebuild pause.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lsdgnn"
	"lsdgnn/internal/sampler"
)

func main() {
	const (
		nodes          = 20_000
		batches        = 5
		eventsPerBatch = 3_000
	)
	base := lsdgnn.GenerateGraph(nodes, 8, 32, 99)
	live := lsdgnn.NewDynamic(base)
	fmt.Printf("base graph: %d nodes, %d edges\n", live.NumNodes(), live.NumEdges())

	s := sampler.New(live, sampler.Config{
		Fanouts: []int{5, 5}, Method: sampler.Streaming, Seed: 99,
	})
	rng := rand.New(rand.NewSource(99))

	for b := 0; b < batches; b++ {
		// Ingest a burst of purchase events.
		for i := 0; i < eventsPerBatch; i++ {
			src := lsdgnn.NodeID(rng.Int63n(nodes))
			dst := lsdgnn.NodeID(rng.Int63n(nodes))
			if src == dst {
				continue
			}
			if err := live.AddEdge(src, dst); err != nil {
				log.Fatal(err)
			}
		}
		// Sample over the live graph — delta edges included.
		roots := make([]lsdgnn.NodeID, 64)
		for i := range roots {
			roots[i] = lsdgnn.NodeID(rng.Int63n(nodes))
		}
		res := s.SampleBatch(roots)
		fmt.Printf("batch %d: %d total edges (%d pending in delta), sampled %d nodes\n",
			b, live.NumEdges(), live.DeltaEdges(), len(res.Hops[0])+len(res.Hops[1]))

		// Compact every other batch, folding the delta into the CSR.
		if b%2 == 1 {
			if err := live.Compact(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("         compacted: delta now %d\n", live.DeltaEdges())
		}
	}
	fmt.Println("dynamic ingestion, sampling and compaction all interleave cleanly ✓")
}
