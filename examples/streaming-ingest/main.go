// Streaming ingest: the dynamic-graph capability the paper credits
// AliGraph with (Section 2.4), on the persistent storage tier. An
// e-commerce event stream appends edges to a durable store — every event
// lands in the write-ahead log before it is acknowledged — while sampling
// keeps running over base segment + memtable; periodic compaction folds
// the memtable into a new immutable CSR segment generation. New
// interactions become samplable immediately, survive a crash, and no
// rebuild pause ever stops the samplers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"lsdgnn"
	"lsdgnn/internal/sampler"
)

func main() {
	const (
		nodes          = 20_000
		batches        = 5
		eventsPerBatch = 3_000
	)
	dir := filepath.Join(os.TempDir(), fmt.Sprintf("lsdgnn-ingest-%d", os.Getpid()))
	defer os.RemoveAll(dir)

	// Bulk-load the nightly snapshot into an immutable CSR segment, then
	// open the store the event stream will append to.
	base := lsdgnn.GenerateGraph(nodes, 8, 32, 99)
	if err := lsdgnn.CreateStore(dir, base); err != nil {
		log.Fatal(err)
	}
	live, err := lsdgnn.OpenDiskStore(lsdgnn.StoreConfig{Path: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	fmt.Printf("base segment: %d nodes, %d edges (generation %d)\n",
		live.NumNodes(), live.NumEdges(), live.Generation())

	// The disk store serves the same batch-first contract as the in-memory
	// backends, so the sampler does not know it is reading from disk.
	s := sampler.New(live, sampler.Config{
		Fanouts: []int{5, 5}, Method: sampler.Streaming, Seed: 99,
	})
	rng := rand.New(rand.NewSource(99))

	for b := 0; b < batches; b++ {
		// Ingest a burst of purchase events. Each append is WAL-logged
		// before the in-memory memtable sees it.
		for i := 0; i < eventsPerBatch; i++ {
			src := lsdgnn.NodeID(rng.Int63n(nodes))
			dst := lsdgnn.NodeID(rng.Int63n(nodes))
			if src == dst {
				continue
			}
			if err := live.AddEdge(src, dst); err != nil {
				log.Fatal(err)
			}
		}
		// Sample over the live store — memtable edges included.
		roots := make([]lsdgnn.NodeID, 64)
		for i := range roots {
			roots[i] = lsdgnn.NodeID(rng.Int63n(nodes))
		}
		res := s.SampleBatch(roots)
		fmt.Printf("batch %d: %d total edges (%d pending in memtable), sampled %d nodes\n",
			b, live.NumEdges(), live.DeltaEdges(), len(res.Hops[0])+len(res.Hops[1]))

		// Compact every other batch: stream base segment + memtable into a
		// new segment generation, commit it, drop the folded WAL.
		if b%2 == 1 {
			if err := live.Compact(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("         compacted: memtable now %d, generation %d\n",
				live.DeltaEdges(), live.Generation())
		}
	}

	// Crash recovery drill: drop the handle without compaction — edges
	// acked since the last compaction live only in the WAL — and reopen.
	// Replay rebuilds the memtable exactly.
	edgesBefore, pendingBefore := live.NumEdges(), live.DeltaEdges()
	live.Close()
	reopened, err := lsdgnn.OpenDiskStore(lsdgnn.StoreConfig{Path: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("reopened: %d edges (%d replayed from WAL, want %d)\n",
		reopened.NumEdges(), reopened.DeltaEdges(), pendingBefore)
	if reopened.NumEdges() != edgesBefore {
		log.Fatalf("lost edges across restart: %d != %d", reopened.NumEdges(), edgesBefore)
	}
	fmt.Println("durable ingestion, sampling, compaction and recovery all interleave cleanly ✓")
}
