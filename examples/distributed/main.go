// Distributed: spins up a real 4-partition TCP graph cluster in-process
// (the same servers cmd/lsdgnn-server runs standalone) with one replica per
// partition, connects a sampling worker over the wire protocol, and runs
// mini-batch k-hop sampling across the sockets — the control plane of the
// paper's storage tier, end to end. The primaries are chaos-injected
// (20% of requests fail), so the client's resilience layer (retries,
// circuit breakers, replica failover) is what keeps every batch whole.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lsdgnn/internal/cluster"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/workload"
)

func main() {
	const partitions, replicas = 4, 2
	ds, err := workload.DatasetByName("ss")
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Build(42)
	part := cluster.HashPartitioner{N: partitions}

	// Launch replicas×partitions TCP servers on loopback, laid out as
	// cluster.UniformReplicas expects: endpoints [0,partitions) are the
	// primaries, the next block the replicas. Primaries misbehave.
	addrs := make([]string, partitions*replicas)
	for r := 0; r < replicas; r++ {
		for p := 0; p < partitions; p++ {
			var h cluster.Handler = cluster.NewServer(g, part, p)
			role := "replica"
			if r == 0 {
				h = cluster.NewFaultyHandler(h, cluster.FaultSpec{ErrRate: 0.2}, int64(p)+1)
				role = "primary, 20% chaos"
			}
			srv, err := cluster.ServeTCP(h, "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			addrs[r*partitions+p] = srv.Addr()
			fmt.Printf("partition %d (%s) serving on %s\n", p, role, srv.Addr())
		}
	}

	// A worker dials all endpoints and samples across the wire with the
	// resilience policy: bounded retries with backoff + jitter, a circuit
	// breaker per endpoint, and failover onto the replica set.
	transport := cluster.DialTCP(addrs, 2)
	defer transport.Close()
	tracer := obs.NewTracer()
	client, err := cluster.NewClientContext(context.Background(), transport, part, -1,
		cluster.WithTracer(tracer),
		cluster.WithPacking(cluster.PackingConfig{}),
		cluster.WithResilience(cluster.ResilienceConfig{
			Retry:    cluster.DefaultRetryPolicy(),
			Breaker:  cluster.DefaultBreakerConfig(),
			Replicas: cluster.UniformReplicas(partitions, replicas),
		}))
	if err != nil {
		log.Fatal(err)
	}

	cfg := sampler.Config{
		Fanouts: []int{10, 10}, NegativeRate: 10,
		Method: sampler.Streaming, FetchAttrs: true, Seed: 42,
	}
	roots := make([]graph.NodeID, 128)
	src := workload.NewBatchSource(g.NumNodes(), len(roots), 1)
	copy(roots, src.Next())

	// A per-batch deadline bounds tail latency: if any partition stalls,
	// the in-flight RPCs are aborted and the error surfaces here.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.SampleBatch(ctx, roots, cfg)
	if err != nil {
		log.Fatal(err)
	}
	traffic := client.Traffic.Snapshot()
	fmt.Printf("\nsampled %d roots over TCP: %d + %d nodes, %d negatives, %d attr vectors\n",
		len(res.Roots), len(res.Hops[0]), len(res.Hops[1]), len(res.Negatives),
		res.NodesFetched(client.AttrLen()))
	fmt.Printf("wire traffic: %d RPCs, %.1f KB requests, %.1f KB responses\n",
		traffic.Requests, float64(traffic.RequestBytes)/1e3, float64(traffic.ResponseBytes)/1e3)
	fmt.Printf("fine-grained structure requests: %.1f%% of all requests (paper: ~48%%)\n",
		client.Access.StructureRequestShare()*100)
	rs := client.Res.Snapshot()
	fmt.Printf("resilience: %d retries, %d failovers to replicas, %d breaker rejects — batch intact despite injected chaos\n",
		rs.Retries, rs.Failovers, rs.BreakerRejects)
	if raw, wire := client.Pack.RawBytes(), client.Pack.WireBytes(); raw > 0 {
		fmt.Printf("MoF packing (protocol v2): %.1f reqs/frame, wire bytes %.0f%% of the v1 equivalent\n",
			client.Pack.PackRatio(), float64(wire)/float64(raw)*100)
	}

	// The trace negotiated over the wire (protocol v2): the batch's latency
	// split hop by hop — packing window vs RPC machinery vs socket time vs
	// server handler.
	fmt.Println("\nper-hop latency (traced over TCP):")
	for _, hop := range []string{obs.HopBatch, obs.HopPack, obs.HopRPC, obs.HopWire, obs.HopServer} {
		h := tracer.Hop(hop)
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  %-8s n=%-4d p50=%-10v p99=%-10v max=%v\n", hop, h.Count,
			time.Duration(h.Quantile(0.5)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(h.Max*float64(time.Second)).Round(time.Microsecond))
	}
}
