// Distributed: spins up a real 4-partition TCP graph cluster in-process
// (the same servers cmd/lsdgnn-server runs standalone), connects a sampling
// worker over the wire protocol, and runs mini-batch k-hop sampling across
// the sockets — the control plane of the paper's storage tier, end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lsdgnn/internal/cluster"
	"lsdgnn/internal/graph"
	"lsdgnn/internal/sampler"
	"lsdgnn/internal/workload"
)

func main() {
	const partitions = 4
	ds, err := workload.DatasetByName("ss")
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Build(42)
	part := cluster.HashPartitioner{N: partitions}

	// Launch one TCP server per partition on loopback.
	addrs := make([]string, partitions)
	var servers []*cluster.TCPServer
	for p := 0; p < partitions; p++ {
		srv, err := cluster.ServeTCP(cluster.NewServer(g, part, p), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs[p] = srv.Addr()
		servers = append(servers, srv)
		fmt.Printf("partition %d serving on %s\n", p, srv.Addr())
	}

	// A worker dials all partitions and samples across the wire.
	transport := cluster.DialTCP(addrs, 2)
	defer transport.Close()
	client, err := cluster.NewClient(transport, part, -1) // fully remote worker
	if err != nil {
		log.Fatal(err)
	}

	cfg := sampler.Config{
		Fanouts: []int{10, 10}, NegativeRate: 10,
		Method: sampler.Streaming, FetchAttrs: true, Seed: 42,
	}
	roots := make([]graph.NodeID, 128)
	src := workload.NewBatchSource(g.NumNodes(), len(roots), 1)
	copy(roots, src.Next())

	// A per-batch deadline bounds tail latency: if any partition stalls,
	// the in-flight RPCs are aborted and the error surfaces here.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.SampleBatch(ctx, roots, cfg)
	if err != nil {
		log.Fatal(err)
	}
	traffic := client.Traffic.Snapshot()
	fmt.Printf("\nsampled %d roots over TCP: %d + %d nodes, %d negatives, %d attr vectors\n",
		len(res.Roots), len(res.Hops[0]), len(res.Hops[1]), len(res.Negatives),
		res.NodesFetched(client.AttrLen()))
	fmt.Printf("wire traffic: %d RPCs, %.1f KB requests, %.1f KB responses\n",
		traffic.Requests, float64(traffic.RequestBytes)/1e3, float64(traffic.ResponseBytes)/1e3)
	fmt.Printf("fine-grained structure requests: %.1f%% of all requests (paper: ~48%%)\n",
		client.Access.StructureRequestShare()*100)
}
