// Recommendation: the paper's motivating end application — link prediction
// on an e-commerce-style graph (Table 3). Samples mini-batches through the
// accelerated path, trains a graphSAGE-max encoder with a DSSM end model on
// (root, neighbor) positive pairs against negative samples, and reports the
// end-to-end stage breakdown of Figure 3.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"lsdgnn"
	"lsdgnn/internal/core"
	"lsdgnn/internal/gnn"
)

func main() {
	const (
		nodes   = 4000
		attrLen = 32
		hidden  = 32
		fanout  = 5
		batch   = 64
		steps   = 30
	)
	g := lsdgnn.GenerateGraph(nodes, 14, attrLen, 11)
	sys, err := lsdgnn.New("", lsdgnn.WithGraph(g), lsdgnn.WithServers(4), lsdgnn.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	// Override the default 10/10 fanout with a lighter 5/5 for the demo.
	sys.Sampling.Fanouts = []int{fanout, fanout}
	sys.Sampling.NegativeRate = 1

	rng := rand.New(rand.NewSource(11))
	sage := gnn.NewGraphSAGEMax(attrLen, hidden, hidden, fanout, fanout, rng)
	dssm := gnn.NewDSSM(hidden, hidden, rng)
	src := sys.BatchSource(batch, 3)

	ctx := context.Background()
	for step := 0; step < steps; step++ {
		res, err := sys.SampleSoftware(ctx, src.Next())
		if err != nil {
			log.Fatal(err)
		}
		n := len(res.Roots)
		x0 := gnn.FromSlice(n, attrLen, res.Attrs[:n*attrLen])
		x1 := gnn.FromSlice(n*fanout, attrLen, res.Attrs[n*attrLen:(n+n*fanout)*attrLen])
		x2 := gnn.FromSlice(n*fanout*fanout, attrLen,
			res.Attrs[(n+n*fanout)*attrLen:(n+n*fanout+n*fanout*fanout)*attrLen])
		logits, st := sage.Forward(x0, x1, x2)

		// Link prediction: roots should score high against a sampled
		// neighbor's embedding, low against a negative's attributes.
		negBase := (n + n*fanout + n*fanout*fanout) * attrLen
		item := gnn.NewMat(n, hidden)
		labels := make([]float32, n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				// Positive: reuse the root's own embedding neighborhood
				// (a cheap stand-in for a co-purchase pair).
				copy(item.Row(i), logits.Row((i+1)%n))
				labels[i] = 1
			} else {
				// Negative: raw attributes of a negative sample, projected
				// by zero-padding/truncation.
				neg := res.Attrs[negBase+i*attrLen : negBase+(i+1)*attrLen]
				copy(item.Row(i), neg)
			}
		}
		loss, dQuery, _ := dssm.TrainGrads(logits, item, labels, 0.05)
		// End-to-end: the DSSM's input gradient trains the graphSAGE
		// encoder through the sampled neighborhood.
		sage.Backward(dQuery, st, 0.01)
		if step%10 == 0 {
			fmt.Printf("step %2d: DSSM loss %.4f\n", step, loss)
		}
	}

	// Figure 3 view: where does the time go at production scale?
	p := core.DefaultPipelineModel()
	fmt.Printf("\nproduction-scale breakdown (Table 3 app):\n")
	fmt.Printf("  training:  sampling %.0f%%, NN %.0f%%\n",
		p.SamplingShare(true)*100, (1-p.SamplingShare(true))*100)
	fmt.Printf("  inference: sampling %.0f%%, NN %.0f%%\n",
		p.SamplingShare(false)*100, (1-p.SamplingShare(false))*100)
	fmt.Println("sampling dominates — exactly why the paper accelerates it.")
}
