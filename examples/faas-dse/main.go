// FaaS design-space exploration: fits the cloud cost model, runs the full
// 8-architecture × 6-dataset × 3-size evaluation grid (Section 6/7) through
// the public API, and prints the paper's headline conclusions.
package main

import (
	"fmt"
	"log"

	"lsdgnn"
	"lsdgnn/internal/faas"
)

func main() {
	model, err := lsdgnn.FitCostModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost model: $/h = %.3f + %.4f·vCPU + %.4f·GB + %.2f·FPGA + %.2f·GPU\n\n",
		model.Intercept, model.VCPUCoef, model.MemCoef, model.FPGACoef, model.GPUCoef)

	ev, err := lsdgnn.EvaluateFaaS()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("geomean normalized performance/dollar (vs vCPU solution):")
	for _, cpl := range []faas.Coupling{faas.Decp, faas.TC} {
		for _, a := range []faas.Arch{faas.Base, faas.CostOpt, faas.CommOpt, faas.MemOpt} {
			fmt.Printf("  %-8v.%-4v  %6.2fx\n", a, cpl, ev.GeomeanPerfPerDollarNormAllSizes(a, cpl))
		}
	}

	fmt.Println("\nper-instance throughput on the ll dataset (medium instances):")
	for _, cpl := range []faas.Coupling{faas.Decp, faas.TC} {
		for _, a := range []faas.Arch{faas.Base, faas.CostOpt, faas.CommOpt, faas.MemOpt} {
			cfg := faas.Config{Arch: a, Coupling: cpl, Size: faas.Medium}
			for _, r := range ev.RowsFor(cfg) {
				if r.Dataset.Name == "ll" {
					fmt.Printf("  %-20v %9.0f roots/s  (%s-bound, %d instances)\n",
						cfg, r.RootsPerSecond, r.Bottleneck, r.Instances)
				}
			}
		}
	}

	fmt.Println("\nconclusions (matching the paper's):")
	fmt.Println("  1. off-the-shelf FaaS.base already beats the vCPU solution on perf/$")
	fmt.Println("  2. cost-opt matches base for users; its NIC savings accrue to the provider")
	fmt.Println("  3. comm-opt's dedicated inter-FPGA fabric removes the communication bottleneck")
	fmt.Println("  4. mem-opt.tc (FPGA DRAM + fast GPU link) unleashes the most performance/dollar")
}
