// Quickstart: build a small e-commerce-style graph, assemble an LSD-GNN
// system, and run one sampling mini-batch on both the software (vCPU
// baseline) path and the AxE accelerator, comparing results and modeled
// throughput.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"lsdgnn"
)

func main() {
	// A scaled power-law graph: 10k nodes, avg degree 12, 64-float attrs.
	g := lsdgnn.GenerateGraph(10_000, 12, 64, 7)
	fmt.Printf("graph: %d nodes, %d edges, attr %d floats (%.1f MB footprint)\n",
		g.NumNodes(), g.NumEdges(), g.AttrLen(), float64(g.FootprintBytes())/1e6)

	// Assemble a 4-partition deployment with default (PoC) engines and
	// protocol-v2 MoF request packing on the storage RPCs.
	sys, err := lsdgnn.New("",
		lsdgnn.WithGraph(g),
		lsdgnn.WithServers(4),
		lsdgnn.WithSeed(7),
		lsdgnn.WithPacking(0),
		lsdgnn.WithPipeline(lsdgnn.PipelineConfig{}), // OoO sampling, default 256-deep window
	)
	if err != nil {
		log.Fatal(err)
	}

	roots := sys.BatchSource(128, 1).Next()

	// Every request path takes a context; the deadline bounds the whole
	// batch, aborting in-flight fan-out RPCs if it expires.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Software path: distributed batched RPC sampling.
	sw, err := sys.SampleSoftware(ctx, roots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software:    %d roots -> %d + %d sampled nodes, %d negatives\n",
		len(sw.Roots), len(sw.Hops[0]), len(sw.Hops[1]), len(sw.Negatives))
	fmt.Printf("             %.1f%% of requests were fine-grained structure reads\n",
		sys.Client.Access.StructureRequestShare()*100)
	if raw, wire := sys.Client.Pack.RawBytes(), sys.Client.Pack.WireBytes(); raw > 0 {
		fmt.Printf("             MoF packing: %.1f reqs/frame, wire bytes %.0f%% of v1 equivalent\n",
			sys.Client.Pack.PackRatio(), float64(wire)/float64(raw)*100)
	}

	// Pipelined path: the same batch through the out-of-order executor
	// (the software model of the AxE load unit, Tech-3). Per-root RNG
	// streams keep it deterministic even though fetches retire out of
	// order.
	pl, err := sys.SamplePipelined(ctx, roots)
	if err != nil {
		log.Fatal(err)
	}
	ps := sys.Pipeline.Stats()
	fmt.Printf("pipelined:   %d roots -> %d + %d sampled nodes, in-flight peak %d requests\n",
		len(pl.Roots), len(pl.Hops[0]), len(pl.Hops[1]), ps.InflightPeak())

	// Accelerated path: the same batch through the dispatcher, which
	// places it on the least-loaded AxE engine.
	hw, stats, err := sys.Sample(ctx, roots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerated: %d roots -> %d + %d sampled nodes in %v (modeled)\n",
		len(hw.Roots), len(hw.Hops[0]), len(hw.Hops[1]), stats.SimTime)
	fmt.Printf("             %.0f roots/s, cache hit %.0f%%, output link %.0f%% busy\n",
		stats.RootsPerSecond, stats.CacheHitRate*100, stats.OutputUtilization*100)

	// Both paths return the same shape; contents differ only by RNG.
	if len(sw.Attrs) != len(hw.Attrs) {
		log.Fatalf("layout mismatch: %d vs %d attr floats", len(sw.Attrs), len(hw.Attrs))
	}
	fmt.Println("software and accelerated results have identical layout ✓")

	// Storage beyond RAM: the same deployment, but the partition servers
	// answer from a persistent mmap CSR + WAL store with a page-cache
	// budget instead of holding the graph in process memory. One option
	// flips the backend; sampling results are byte-identical.
	dir, err := os.MkdirTemp("", "lsdgnn-quickstart-store")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dsys, err := lsdgnn.New("",
		lsdgnn.WithGraph(g),
		lsdgnn.WithServers(4),
		lsdgnn.WithSeed(7),
		lsdgnn.WithStore(lsdgnn.StoreConfig{
			Backend: lsdgnn.StoreDisk, Path: dir, MemoryBudget: 8 << 20,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dsys.Close()
	dsw, err := dsys.SampleSoftware(ctx, roots)
	if err != nil {
		log.Fatal(err)
	}
	for i := range sw.Attrs {
		if sw.Attrs[i] != dsw.Attrs[i] {
			log.Fatalf("disk-backed attr %d diverged: %v != %v", i, dsw.Attrs[i], sw.Attrs[i])
		}
	}
	fmt.Printf("disk-backed: same batch from a %s store under an 8 MB budget — byte-identical ✓\n", dir)
}
