package lsdgnn

import (
	"time"

	"lsdgnn/internal/cluster"
	"lsdgnn/internal/core"
	"lsdgnn/internal/gateway"
	"lsdgnn/internal/obs"
	"lsdgnn/internal/pipeline"
	"lsdgnn/internal/sampler"
)

// Error and policy types re-exported from the cluster layer, so callers
// match on semantics with errors.As instead of string-matching messages
// from an internal package:
//
//	res, err := sys.SampleSoftware(ctx, roots)
//	var pe *lsdgnn.PartialError
//	if errors.As(err, &pe) {
//		// Degraded batch: res keeps its full layout; pe.Shards lists
//		// every lost partition. Use or discard res deliberately.
//		log.Printf("degraded: %d shards lost", len(pe.Shards))
//	} else if err != nil {
//		return err // hard failure, res is nil
//	}
//
//	var se *lsdgnn.ServerError
//	if errors.As(err, &se) {
//		// A live server rejected the request (bad node ID, malformed
//		// frame): deterministic, so retrying is pointless.
//		log.Printf("server %d rejected: %s", se.Server, se.Msg)
//	}
type (
	// PartialError annotates a degraded batch: the result is
	// layout-complete but the listed shards contributed no data. Returned
	// only when the resilience policy enables PartialResults.
	PartialError = cluster.PartialError
	// ServerError is a deterministic application-level rejection from a
	// live server — never retried, never counted against breakers.
	ServerError = cluster.ServerError
	// ShardError pairs one lost partition with its error inside a
	// PartialError.
	ShardError = cluster.ShardError
	// ResilienceConfig tunes retries, circuit breakers, replica failover,
	// hedging, and partial-results degradation.
	ResilienceConfig = cluster.ResilienceConfig
	// FaultSpec injects seeded chaos into the storage transport.
	FaultSpec = cluster.FaultSpec
	// PackingConfig tunes protocol-v2 MoF request packing (window,
	// per-frame request cap, BDI compression).
	PackingConfig = cluster.PackingConfig
	// DispatcherConfig tunes batch placement across AxE engines.
	DispatcherConfig = core.DispatcherConfig
	// TracingConfig sizes the system tracer: span-ring capacity and the
	// 1-in-n span sampling rate (histograms always record).
	TracingConfig = obs.TracerConfig
	// PipelineConfig tunes the out-of-order sampling executor (in-flight
	// window, hop-overlap bound) enabled by WithPipeline.
	PipelineConfig = pipeline.Config
	// PipelinePartialError reports per-root degradation from a pipelined
	// batch: the result keeps its full layout, and each listed root's
	// subtree carries self-loop padding / zeroed attributes.
	PipelinePartialError = pipeline.PartialError
	// RootError pairs one degraded root with its error inside a
	// PipelinePartialError.
	RootError = pipeline.RootError
	// Layout is the versioned, epoch-numbered elastic partition layout:
	// partitions → replica endpoint sets with per-endpoint lifecycle
	// states (serving|joining|draining). Built by UniformLayout or
	// cluster.NewLayout; swapped live via System.Client.ApplyLayout,
	// AddReplica, DrainReplica, and MigratePartition.
	Layout = cluster.Layout
	// GatewayConfig assembles the multi-tenant serving gateway enabled by
	// WithGateway: tenants, queue depths, fair-scheduling quantum, and the
	// shedding thresholds.
	GatewayConfig = gateway.Config
	// TenantConfig declares one tenant: name, api key, service class,
	// rate/burst, fair-share weight, and latency SLO.
	TenantConfig = gateway.TenantConfig
	// AuthError reports a SampleAs call with an unknown or missing api key.
	AuthError = gateway.AuthError
	// RateLimitError reports a batch refused by the tenant's token bucket;
	// RetryAfter says when capacity returns.
	RateLimitError = gateway.RateLimitError
	// AdmissionError reports a batch shed under backpressure (tenant queue
	// full, or the system's occupancy/SLO-burn signals crossed their
	// thresholds and this tenant carried the heaviest queue).
	AdmissionError = gateway.AdmissionError
)

// AsPartial unwraps a *PartialError, mirroring cluster.AsPartial.
func AsPartial(err error) (*PartialError, bool) { return cluster.AsPartial(err) }

// AsPipelinePartial unwraps a *PipelinePartialError, mirroring
// pipeline.AsPartial.
func AsPipelinePartial(err error) (*PipelinePartialError, bool) { return pipeline.AsPartial(err) }

// AsRateLimited unwraps a *RateLimitError from a SampleAs error chain:
//
//	res, err := sys.SampleAs(ctx, key, roots)
//	if rl, ok := lsdgnn.AsRateLimited(err); ok {
//		time.Sleep(rl.RetryAfter) // tenant over its bucket — back off
//	}
func AsRateLimited(err error) (*RateLimitError, bool) { return gateway.AsRateLimited(err) }

// AsShed unwraps an *AdmissionError from a SampleAs error chain. A shed
// batch was never dispatched — resubmitting later is safe and expected.
func AsShed(err error) (*AdmissionError, bool) { return gateway.AsShed(err) }

// DefaultResilienceConfig returns the stock retry/breaker/failover policy.
func DefaultResilienceConfig() ResilienceConfig { return cluster.DefaultResilienceConfig() }

// Option customizes a System built by New.
type Option func(*Options)

// WithGraph supplies a caller-built graph instead of a named dataset.
func WithGraph(g *Graph) Option {
	return func(o *Options) { o.Graph = g }
}

// WithServers sets the storage partition count (default 4).
func WithServers(n int) Option {
	return func(o *Options) { o.Servers = n }
}

// WithSeed seeds graph generation, sampling, and fault injection.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithSampling overrides the Table 2 default sampling workload.
func WithSampling(cfg SamplerConfig) Option {
	return func(o *Options) { o.Sampling = cfg }
}

// WithEngines overrides the PoC AxE engine configuration.
func WithEngines(cfg EngineConfig) Option {
	return func(o *Options) { o.Engine = cfg }
}

// WithDispatch tunes how batches are placed across engines.
func WithDispatch(cfg DispatcherConfig) Option {
	return func(o *Options) { o.Dispatch = cfg }
}

// WithTracing sizes the system tracer: how many completed spans the ring
// retains (/trace lookups reach back this far) and the 1-in-n trace
// sampling rate for the span log. Zero fields keep the defaults (512
// spans, every trace kept):
//
//	sys, err := lsdgnn.New("ss",
//		lsdgnn.WithTracing(lsdgnn.TracingConfig{SpanLog: 4096, SampleRate: 8}),
//	)
func WithTracing(cfg TracingConfig) Option {
	return func(o *Options) { o.Tracing = cfg }
}

// WithNetDelay injects a fixed per-call transport delay (deadline and
// timeout testing without sockets).
func WithNetDelay(d time.Duration) Option {
	return func(o *Options) { o.NetDelay = d }
}

// WithReplicas replicates every partition n ways; n > 1 implies a default
// resilience policy (failover needs retries and breakers) unless
// WithResilience overrides it.
func WithReplicas(n int) Option {
	return func(o *Options) { o.Replicas = n }
}

// WithResilience sets the client fault-tolerance policy explicitly.
func WithResilience(cfg ResilienceConfig) Option {
	return func(o *Options) { c := cfg; o.Resilience = &c }
}

// UniformLayout builds the canonical replicated layout (replica r of
// partition p at endpoint r*partitions+p) as an epoch-1 Layout for
// WithLayout.
func UniformLayout(partitions, replicas int) *Layout {
	return cluster.UniformLayout(partitions, replicas)
}

// WithLayout makes the partition layout elastic: the system builds one
// server per layout endpoint, and the client routes by the layout's
// epoch-versioned replica sets instead of a frozen ReplicaMap. Replicas
// can then be added (probe-gated), drained, and whole partitions migrated
// between endpoints while traffic flows:
//
//	sys, err := lsdgnn.New("ss",
//		lsdgnn.WithServers(2),
//		lsdgnn.WithLayout(lsdgnn.UniformLayout(2, 2)),
//		lsdgnn.WithSpares(0), // endpoint 4: spare holding partition 0
//	)
//	err = sys.Client.DrainReplica(ctx, 0, 2) // rotate replica out
//	err = sys.Client.AddReplica(ctx, 0, 4)   // admit the spare
//
// Implies a default resilience policy (layout swaps route through the
// failover path) unless WithResilience overrides it.
func WithLayout(l *Layout) Option {
	return func(o *Options) { o.Layout = l }
}

// WithSpares builds one extra storage server per listed partition index,
// attached to the transport after every layout endpoint but outside the
// initial layout — raw material for Client.AddReplica and
// Client.MigratePartition.
func WithSpares(partitions ...int) Option {
	return func(o *Options) { o.Spares = partitions }
}

// WithFaults injects seeded chaos into the storage transport.
func WithFaults(spec FaultSpec) Option {
	return func(o *Options) { s := spec; o.Faults = &s }
}

// WithPacking enables protocol-v2 MoF request packing with the given
// coalescing window (0 = default window): same-shard requests share one
// packed, BDI-compressed frame, and concurrent attribute fetches for the
// same node coalesce into a single wire fetch.
func WithPacking(window time.Duration) Option {
	return WithPackingConfig(PackingConfig{Window: window})
}

// WithPackingConfig is WithPacking with every knob exposed.
func WithPackingConfig(cfg PackingConfig) Option {
	return func(o *Options) { c := cfg; o.Packing = &c }
}

// WithPipeline enables the out-of-order sampling executor — the software
// model of the AxE load unit (Section 4.2 Tech-3). System.SamplePipelined
// then decomposes each batch into per-root, per-hop fetches flowing
// through a bounded in-flight window (cfg.Window node-requests, 0 =
// default 256), overlapping later hops of fast roots with earlier hops of
// slow ones. Sampling switches to derived per-root RNG streams, so the
// pipelined result is byte-identical to the synchronous path for the same
// seed:
//
//	sys, err := lsdgnn.New("ss",
//		lsdgnn.WithPipeline(lsdgnn.PipelineConfig{Window: 256}),
//	)
//	res, err := sys.SamplePipelined(ctx, roots)
func WithPipeline(cfg PipelineConfig) Option {
	return func(o *Options) { c := cfg; o.Pipeline = &c }
}

// WithGateway builds the multi-tenant serving gateway in front of the
// system: per-tenant admission (api key → token bucket → weighted-fair
// queue) and SLO-driven shedding wired to the system's live backpressure.
// System.SampleAs then serves tenant traffic; rejections surface as typed
// AuthError / RateLimitError / AdmissionError values:
//
//	sys, err := lsdgnn.New("ss", lsdgnn.WithGateway(lsdgnn.GatewayConfig{
//		Tenants: []lsdgnn.TenantConfig{
//			{Name: "alice", Key: "ak", Class: "latency", Rate: 500, Weight: 4},
//			{Name: "bob", Key: "bk", Class: "throughput", Rate: 100},
//		},
//	}))
//	defer sys.Close()
//	res, err := sys.SampleAs(ctx, "ak", roots)
func WithGateway(cfg GatewayConfig) Option {
	return func(o *Options) { c := cfg; o.Gateway = &c }
}

// WithEngineSpares builds n extra AxE engines that start outside the
// dispatcher's active set — headroom a gateway autoscaler grows into via
// System.Dispatcher.SetActive.
func WithEngineSpares(n int) Option {
	return func(o *Options) { o.EngineSpares = n }
}

// WithStore selects the storage substrate behind the partition servers.
// The default (StoreMemory) serves from the in-process graph. StoreDisk
// persists the graph as an mmap'd CSR segment + write-ahead log at
// cfg.Path — bulk-loaded on first use, reopened (with WAL crash recovery)
// thereafter — and the servers answer from it while keeping at most
// cfg.MemoryBudget bytes of segment data resident, which is how a node
// serves a graph larger than its RAM:
//
//	sys, err := lsdgnn.New("ss", lsdgnn.WithStore(lsdgnn.StoreConfig{
//		Backend:      lsdgnn.StoreDisk,
//		Path:         "/data/lsdgnn/ss",
//		MemoryBudget: 256 << 20, // 0 = mmap the whole segment
//		SyncMode:     lsdgnn.StoreSyncAlways,
//	}))
//	defer sys.Close() // syncs the WAL, releases the mapping
//
// Storage failures surface as wrapped sentinels: match
// lsdgnn.ErrStoreCorrupt / lsdgnn.ErrStoreBudget with errors.Is.
func WithStore(cfg StoreConfig) Option {
	return func(o *Options) { o.Store = cfg }
}

// New assembles a deployment from a named Table 2 dataset ("ss", "ls",
// "sl", "ml", "ll", "syn") and functional options:
//
//	sys, err := lsdgnn.New("ss",
//		lsdgnn.WithReplicas(2),
//		lsdgnn.WithFaults(lsdgnn.FaultSpec{ErrRate: 0.05}),
//		lsdgnn.WithPacking(0),
//	)
//
// An empty dataset name requires WithGraph. The partition count defaults
// to 4 servers; every other knob defaults as documented on its option.
func New(dataset string, opts ...Option) (*System, error) {
	o := Options{Servers: 4}
	if dataset != "" {
		ds, err := workloadDataset(dataset)
		if err != nil {
			return nil, err
		}
		o.Dataset = ds
	}
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewSystem(o)
}

// workloadDataset resolves a dataset name (indirection keeps options.go
// free of a workload import cycle in future splits).
func workloadDataset(name string) (Dataset, error) { return DatasetByName(name) }

// DefaultSamplerConfig returns the paper's default two-hop sampling
// workload for the given seed — the configuration New applies when
// WithSampling is not given.
func DefaultSamplerConfig(seed int64) SamplerConfig {
	return sampler.Config{
		Fanouts: []int{10, 10}, NegativeRate: 10,
		Method: sampler.Streaming, FetchAttrs: true, Seed: seed,
	}
}
